package query

// Bind-time join resolution and ordering. Both join surfaces — the
// graph form (JoinGraph) and the deprecated linear shims — funnel into
// the same machinery here: relations resolve to dimension handles,
// payloads settle (explicit for the shims, inferred from downstream
// demand for graphs), and the joins are ordered for execution.
//
// Ordering is greedy and statistics-free, the zero-maintenance policy
// the paper's HTAP setting wants: no histograms or cardinality sketches
// survive the transactional churn, so the planner ranks relations by
// what it can know exactly right now — the dimension's current row
// count, sharpened to an exact match count when an Eq predicate hits a
// secondary index (internal/index), halved per remaining predicate —
// and repeatedly places the smallest placeable relation. Connectivity
// constrains placement: a relation joins only once every source column
// of its key (fact columns, or payloads of other relations) is
// available. Results are order-independent — every join is a lookup
// against a unique dimension key — so ordering affects work, never
// answers.

import (
	"fmt"

	"elastichtap/internal/columnar"
	"elastichtap/internal/oltp"
)

// rjoin is one join's Bind-time resolution state.
type rjoin struct {
	spec   *joinSpec
	dh     *oltp.TableHandle
	schema columnar.Schema
	// keySrc names the relation providing each fact-side key column; ""
	// means the fact table itself.
	keySrc []string
	est    int64 // greedy size estimate
	// payBase is the join's first global payload slot, assigned in
	// execution order.
	payBase int
}

// resolveJoins resolves the plan's joins against the catalog and orders
// them. It returns the joins twice — in written (first-mention) order,
// which fixes name resolution and scan-list layout so both ordering
// modes bind to identical metadata, and in execution order — plus any
// predicates the graph attached to the fact relation.
func (p *Plan) resolveJoins(cat Catalog, schema columnar.Schema) (written, ordered []*rjoin, factPreds []Pred, err error) {
	if len(p.graph) > 0 {
		written, factPreds, err = p.resolveGraph(cat, schema)
	} else {
		written, err = p.resolveShims(cat, schema)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	ordered, err = orderJoins(written, p.joinOrder)
	if err != nil {
		return nil, nil, nil, err
	}
	return written, ordered, factPreds, nil
}

// resolveShims lifts the deprecated Join/SemiJoin specs (at most one
// today, but the machinery is shared) into resolution state.
func (p *Plan) resolveShims(cat Catalog, schema columnar.Schema) ([]*rjoin, error) {
	var out []*rjoin
	for _, spec := range p.joins {
		dh := cat.Handle(spec.dim)
		if dh == nil {
			return nil, fmt.Errorf("query: unknown dimension table %q", spec.dim)
		}
		rj := &rjoin{spec: spec, dh: dh, schema: dh.Table().Schema()}
		for _, fk := range spec.factKeys {
			src := ""
			if schema.ColumnIndex(fk) < 0 {
				// Not a fact column: it must be another join's payload.
				for _, other := range p.joins {
					if other == spec {
						continue
					}
					for _, pc := range other.payload {
						if pc == fk {
							src = other.dim
						}
					}
				}
			}
			rj.keySrc = append(rj.keySrc, src)
		}
		out = append(out, rj)
	}
	return out, nil
}

// resolveGraph turns the edge list into per-relation join specs: edges
// pointing at one relation merge into its composite key, relation
// predicates become build-side filters (fact-relation predicates are
// returned for the scan), and payloads are inferred from downstream
// demand — edge source columns, group keys, aggregate inputs and
// CountIf conditions owned by a relation.
func (p *Plan) resolveGraph(cat Catalog, schema columnar.Schema) ([]*rjoin, []Pred, error) {
	var written []*rjoin
	nodes := map[string]*rjoin{}
	var factPreds []Pred
	seenRel := map[*Relation]bool{}
	notePreds := func(r *Relation) {
		if seenRel[r] {
			return
		}
		seenRel[r] = true
		if r.name == p.table {
			factPreds = append(factPreds, r.preds...)
		} else if n := nodes[r.name]; n != nil {
			n.spec.preds = append(n.spec.preds, r.preds...)
		}
	}
	// First pass: create one node per target relation, merging edge keys.
	for _, e := range p.graph {
		n := nodes[e.to.name]
		if n == nil {
			dh := cat.Handle(e.to.name)
			if dh == nil {
				return nil, nil, fmt.Errorf("query: unknown dimension table %q", e.to.name)
			}
			n = &rjoin{spec: &joinSpec{dim: e.to.name}, dh: dh, schema: dh.Table().Schema()}
			nodes[e.to.name] = n
			written = append(written, n)
		}
		for i, fc := range e.fromCols {
			src := e.from.name
			if src == p.table {
				src = ""
			}
			n.spec.factKeys = append(n.spec.factKeys, fc)
			n.spec.dimKeys = append(n.spec.dimKeys, e.toCols[i])
			n.keySrc = append(n.keySrc, src)
		}
		if len(n.spec.factKeys) > maxJoinCols {
			return nil, nil, fmt.Errorf("query: join key for relation %q exceeds %d columns", e.to.name, maxJoinCols)
		}
	}
	// Second pass: attach relation predicates (the target node now exists
	// even when the relation is first mentioned as an edge source).
	for _, e := range p.graph {
		notePreds(e.from)
		notePreds(e.to)
	}
	for _, e := range p.graph {
		if e.from.name != p.table && nodes[e.from.name] == nil {
			return nil, nil, fmt.Errorf("%w: relation %q is only an edge source and is never joined",
				ErrDisconnectedJoinGraph, e.from.name)
		}
	}
	// Payload inference (a): a non-fact edge source must project the
	// referenced column for the downstream probe to read.
	for _, n := range written {
		for i, src := range n.keySrc {
			if src == "" {
				continue
			}
			owner := nodes[src]
			fk := n.spec.factKeys[i]
			if owner.schema.ColumnIndex(fk) < 0 {
				return nil, nil, fmt.Errorf("query: relation %q has no column %q (join key for %q)",
					src, fk, n.spec.dim)
			}
			addPayload(owner, fk)
		}
	}
	// Payload inference (b): downstream demand owned by exactly one
	// relation projects from it; a name owned by several relations (or a
	// relation and the fact table) is ambiguous.
	var demand []string
	demand = append(demand, p.groups...)
	for _, a := range p.aggs {
		if a.col != "" {
			demand = append(demand, a.col)
		}
		if a.cond != nil {
			demand = append(demand, a.cond.col)
		}
	}
	for _, name := range demand {
		var owners []*rjoin
		for _, n := range written {
			if n.schema.ColumnIndex(name) >= 0 {
				owners = append(owners, n)
			}
		}
		inFact := schema.ColumnIndex(name) >= 0
		switch {
		case inFact && len(owners) > 0:
			return nil, nil, fmt.Errorf("%w: %q is reachable from fact table %q and relation %q",
				ErrAmbiguousColumn, name, p.table, owners[0].spec.dim)
		case len(owners) > 1:
			return nil, nil, fmt.Errorf("%w: %q is reachable from relations %q and %q",
				ErrAmbiguousColumn, name, owners[0].spec.dim, owners[1].spec.dim)
		case len(owners) == 1:
			addPayload(owners[0], name)
		}
	}
	return written, factPreds, nil
}

func addPayload(rj *rjoin, col string) {
	for _, pc := range rj.spec.payload {
		if pc == col {
			return
		}
	}
	rj.spec.payload = append(rj.spec.payload, col)
}

// orderJoins places the joins. A join is placeable once every key
// column sourced from another relation is in a placed relation's
// payload; among placeable joins, OrderGreedy picks the smallest
// estimate (ties break on written order) and OrderWritten the earliest
// written. An unplaceable remainder is a disconnected (or cyclic)
// graph.
func orderJoins(written []*rjoin, mode JoinOrder) ([]*rjoin, error) {
	if len(written) == 0 {
		return nil, nil
	}
	for _, rj := range written {
		rj.est = estimateJoin(rj)
	}
	avail := map[string]bool{}
	placeable := func(rj *rjoin) bool {
		for i, fk := range rj.spec.factKeys {
			if rj.keySrc[i] != "" && !avail[fk] {
				return false
			}
		}
		return true
	}
	ordered := make([]*rjoin, 0, len(written))
	done := make([]bool, len(written))
	for len(ordered) < len(written) {
		best := -1
		for i, rj := range written {
			if done[i] || !placeable(rj) {
				continue
			}
			if best < 0 {
				best = i
				if mode == OrderWritten {
					break
				}
				continue
			}
			if rj.est < written[best].est {
				best = i
			}
		}
		if best < 0 {
			for i, rj := range written {
				if !done[i] {
					return nil, fmt.Errorf("%w: relation %q cannot be placed (no placed relation provides its key columns)",
						ErrDisconnectedJoinGraph, rj.spec.dim)
				}
			}
		}
		done[best] = true
		ordered = append(ordered, written[best])
		for _, pc := range written[best].spec.payload {
			avail[pc] = true
		}
	}
	return ordered, nil
}

// estimateJoin sizes a relation with zero statistics: the dimension's
// current row count, replaced by the exact secondary-index match count
// for Eq predicates on indexed columns, and halved per predicate the
// index cannot answer. Lazy index builds mean the first plan over a
// filtered dimension pays the build; every later plan gets exact counts
// for free (refreshed at ETL batch boundaries and instance switches).
func estimateJoin(rj *rjoin) int64 {
	est := rj.dh.Table().Rows()
	for _, pr := range rj.spec.preds {
		if n, ok := indexEqCount(rj.dh, rj.schema, pr); ok {
			if n < est {
				est = n
			}
			continue
		}
		est /= 2
	}
	return est
}

// indexEqCount answers an Eq predicate exactly through the dimension's
// secondary index: the posting count for the literal's word (dictionary
// code for strings). Parameters, non-Eq operators, float columns and
// unindexable columns report ok=false.
func indexEqCount(dh *oltp.TableHandle, schema columnar.Schema, pr Pred) (int64, bool) {
	if pr.op != opEq || dh.Sec == nil {
		return 0, false
	}
	if _, isParam := pr.lo.(param); isParam {
		return 0, false
	}
	col := schema.ColumnIndex(pr.col)
	if col < 0 {
		return 0, false
	}
	var w int64
	switch schema.Columns[col].Type {
	case columnar.Int64:
		v, err := toInt64(pr.col, pr.lo)
		if err != nil {
			return 0, false
		}
		w = v
	case columnar.String:
		s, ok := pr.lo.(string)
		if !ok {
			return 0, false
		}
		code, known := dh.Table().Dict(col).Lookup(s)
		if !known {
			return 0, true // an unknown literal matches nothing, exactly
		}
		w = code
	default:
		return 0, false
	}
	return dh.Sec.CountEq(col, w)
}
