package query

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"elastichtap/internal/columnar"
)

// Param is a named placeholder usable anywhere a predicate literal is:
// Filter, JoinFilter, Having, CountIf conditions, and either end of a
// Between. A plan containing parameters binds once (catalog lookup,
// predicate typing, kernel selection) and is then stamped per execution
// with WithArgs, which substitutes values into the compiled predicate
// tests without re-running compilation:
//
//	plan := query.Scan("orderline").
//		Filter(query.Ge("ol_delivery_d", query.Param("since"))).
//		Agg(query.Sum("ol_amount").As("revenue"))
//	stmt, _ := plan.Bind(db)                            // once
//	q, _ := stmt.WithArgs(query.Args{"since": day})     // per execution
//
// The same name may appear in several predicates; every occurrence
// receives the same value.
func Param(name string) any { return param{name: name} }

// Args carries the values for a statement's named parameters, one entry
// per distinct Param name. Values follow the same conversion rules as
// literals (Go integers and float64 for numeric columns, string for
// string columns); mismatches fail with ErrPredType at stamping time.
type Args map[string]any

// param is the placeholder value Param returns.
type param struct{ name string }

func (p param) String() string { return ":" + p.name }

// siteKind locates a parameterized predicate inside a Compiled.
type siteKind int8

const (
	siteFilter siteKind = iota // Compiled.filters[idx]
	siteJoin                   // Compiled.joins[jidx].preds[idx]
	siteHaving                 // Compiled.having[idx]
	siteCond                   // Compiled.aggs[idx].cond
)

// paramSite is one predicate awaiting its values: the original predicate
// (with placeholders), the bound column's storage type, the dictionary
// for string columns, and where the stamped test must land (jidx selects
// the join for siteJoin sites). Recording the site at Bind is what lets
// WithArgs skip compilation entirely: name resolution, type analysis and
// slot assignment are already done.
type paramSite struct {
	kind siteKind
	idx  int
	jidx int
	pred Pred
	typ  columnar.Type
	dict *columnar.Dict
}

// predParams returns the placeholder names a predicate references.
func predParams(pr Pred) []string {
	var names []string
	if p, ok := pr.lo.(param); ok {
		names = append(names, p.name)
	}
	if p, ok := pr.hi.(param); ok {
		names = append(names, p.name)
	}
	return names
}

// noteParams validates a parameterized predicate against its bound
// column and records the stamping site. Everything knowable at Bind is
// checked here — operator/type rules and any literal mixed in alongside
// a placeholder (Between with one fixed end) — so Prepare surfaces type
// errors once and only the placeholder values arrive later.
func (c *Compiled) noteParams(pr Pred, typ columnar.Type, dict *columnar.Dict, kind siteKind, idx, jidx int) error {
	for _, n := range predParams(pr) {
		if n == "" {
			return fmt.Errorf("query: Param with empty name on column %q", pr.col)
		}
	}
	if typ == columnar.String && pr.op != opEq && pr.op != opNe {
		return fmt.Errorf("query: string column %q supports only Eq/Ne, got %v", pr.col, pr.op)
	}
	checkLiteral := func(v any) error {
		if _, ok := v.(param); ok {
			return nil
		}
		switch typ {
		case columnar.Int64:
			_, err := toInt64(pr.col, v)
			return err
		case columnar.Float64:
			_, err := toFloat64(pr.col, v)
			return err
		default: // columnar.String
			if _, ok := v.(string); !ok {
				return fmt.Errorf("query: string column %q compared with %v (%T): %w", pr.col, v, v, ErrPredType)
			}
			return nil
		}
	}
	if err := checkLiteral(pr.lo); err != nil {
		return err
	}
	if pr.op == opBetween || pr.op == opNotBetween {
		if err := checkLiteral(pr.hi); err != nil {
			return err
		}
	}
	c.params = append(c.params, paramSite{kind: kind, idx: idx, jidx: jidx, pred: pr, typ: typ, dict: dict})
	return nil
}

// paramNames computes the distinct placeholder names across the
// recorded sites; Bind caches the result so per-execution stamping never
// rebuilds it.
func paramNames(sites []paramSite) []string {
	set := map[string]bool{}
	for _, s := range sites {
		for _, n := range predParams(s.pred) {
			set[n] = true
		}
	}
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParamNames returns the statement's distinct parameter names, sorted.
// Empty for fully-literal plans.
func (c *Compiled) ParamNames() []string {
	return append([]string(nil), c.names...)
}

// Err reports whether the compiled plan is executable as-is: a statement
// with unbound parameters must be stamped with WithArgs first. The
// runner checks this before admission, so executing an unstamped
// statement fails with a descriptive error instead of scanning against
// never-matching placeholder predicates.
func (c *Compiled) Err() error {
	if len(c.params) > 0 && !c.stamped {
		return fmt.Errorf("query: %s has unbound parameters %v; call WithArgs", c.name, c.ParamNames())
	}
	return nil
}

// WithArgs stamps parameter values into the compiled predicate tests and
// returns an executable statement. The receiver is never mutated: each
// call clones the few predicate slots that carry parameters, so one
// prepared statement serves concurrent executions with different
// arguments. No catalog lookup, type analysis or kernel selection runs
// here — only the literal-to-test canonicalization a fresh Bind would
// perform on the same values, which is why stamped executions are
// bitwise identical to rebinding the plan with the values inlined.
//
// Every parameter must be supplied and every supplied name must be a
// parameter; value/column type mismatches fail with ErrPredType exactly
// like inline literals. For a parameterless statement WithArgs(nil)
// returns the receiver unchanged.
func (c *Compiled) WithArgs(args Args) (*Compiled, error) {
	if len(c.params) == 0 {
		if len(args) > 0 {
			return nil, fmt.Errorf("query: %s takes no parameters, got %d", c.name, len(args))
		}
		return c, nil
	}
	// c.names is small and sorted; linear membership checks avoid any
	// per-execution allocation on this hot path.
	for _, n := range c.names {
		if _, ok := args[n]; !ok {
			return nil, fmt.Errorf("query: %s: missing argument for parameter %q", c.name, n)
		}
	}
	if len(args) > len(c.names) {
		for n := range args {
			if !slices.Contains(c.names, n) {
				return nil, fmt.Errorf("query: %s: argument %q matches no parameter (have %v)", c.name, n, c.names)
			}
		}
	}
	// Reuse fast path: identical values to the last stamping return the
	// cached clone with no cloning or canonicalization at all.
	if c.cache != nil {
		if hit := c.cache.get(args); hit != nil {
			return hit, nil
		}
	}

	// Clone only the slices that actually carry parameter sites; the
	// rest of the statement is shared read-only with every execution.
	clone := *c
	var stampedKinds [4]bool
	for _, s := range c.params {
		stampedKinds[s.kind] = true
	}
	if stampedKinds[siteFilter] {
		clone.filters = slices.Clone(c.filters)
	}
	if stampedKinds[siteHaving] {
		clone.having = slices.Clone(c.having)
	}
	if stampedKinds[siteCond] {
		clone.aggs = slices.Clone(c.aggs)
	}
	if stampedKinds[siteJoin] {
		// Clone only the joins that actually carry sites; the rest share
		// their joinPlans read-only with the receiver.
		clone.joins = slices.Clone(c.joins)
		cloned := make([]bool, len(c.joins))
		for _, s := range c.params {
			if s.kind != siteJoin || cloned[s.jidx] {
				continue
			}
			j := *c.joins[s.jidx]
			j.preds = slices.Clone(j.preds)
			clone.joins[s.jidx] = &j
			cloned[s.jidx] = true
		}
	}
	for _, s := range c.params {
		pr := s.pred
		pr.lo = resolveArg(pr.lo, args)
		pr.hi = resolveArg(pr.hi, args)
		var t ftest
		var err error
		if s.kind == siteHaving {
			// Having compares emitted float64 cells regardless of the
			// source column's storage type.
			t, err = makeFloatTest(pr)
		} else {
			switch s.typ {
			case columnar.Int64:
				t, err = makeIntTest(pr)
			case columnar.Float64:
				t, err = makeFloatTest(pr)
			case columnar.String:
				t, err = makeStringTest(s.dict, pr)
			default:
				err = fmt.Errorf("query: unsupported parameter column type for %q", pr.col)
			}
		}
		if err != nil {
			return nil, err
		}
		switch s.kind {
		case siteFilter:
			clone.filters[s.idx].ftest = t
		case siteJoin:
			clone.joins[s.jidx].preds[s.idx].ftest = t
		case siteHaving:
			clone.having[s.idx].ftest = t
		case siteCond:
			tc := t
			clone.aggs[s.idx].cond = &tc
		}
	}
	clone.stamped = true
	if c.cache != nil && cacheableArgs(args) {
		c.cache.put(args, &clone)
	}
	return &clone, nil
}

// resolveArg substitutes a placeholder with its argument; literals pass
// through untouched.
func resolveArg(v any, args Args) any {
	if p, ok := v.(param); ok {
		return args[p.name]
	}
	return v
}

// stmtCache remembers the most recently stamped execution of a prepared
// statement, so re-executing with unchanged argument values returns the
// cached clone instead of re-cloning predicate slots and re-running the
// literal-to-test canonicalization. Dashboards refreshing one statement
// with fixed parameters hit this path on every execution after the
// first. A stamped statement is never mutated afterwards (Prepare builds
// a fresh exec), so sharing the cached clone across concurrent
// executions is safe.
type stmtCache struct {
	mu sync.Mutex
	//htap:guardedby mu
	args    Args      // always a defensive copy with comparable scalar values
	stamped *Compiled //htap:guardedby mu
}

// get returns the cached statement when args match the last-stamped
// values exactly, nil otherwise.
func (sc *stmtCache) get(args Args) *Compiled {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.stamped == nil || !argsEqual(sc.args, args) {
		return nil
	}
	return sc.stamped
}

// put records a freshly stamped statement under a defensive copy of its
// args, so a caller mutating the map after the call cannot poison the
// cache.
func (sc *stmtCache) put(args Args, stamped *Compiled) {
	cp := make(Args, len(args))
	for k, v := range args {
		cp[k] = v
	}
	sc.mu.Lock()
	sc.args, sc.stamped = cp, stamped
	sc.mu.Unlock()
}

// comparableArg reports whether a value participates in cache equality:
// exactly the scalar kinds predicates accept. Anything else bypasses the
// reuse path rather than risking a panic on ==.
func comparableArg(v any) bool {
	switch v.(type) {
	case int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64,
		float32, float64, string:
		return true
	}
	return false
}

// cacheableArgs reports whether every value is a comparable scalar.
func cacheableArgs(args Args) bool {
	for _, v := range args {
		if !comparableArg(v) {
			return false
		}
	}
	return true
}

// argsEqual compares argument sets by value. The stored side is known
// comparable; the incoming side is re-checked to keep == panic-free.
func argsEqual(stored, incoming Args) bool {
	if len(stored) != len(incoming) {
		return false
	}
	for k, sv := range stored {
		iv, ok := incoming[k]
		if !ok || !comparableArg(iv) || sv != iv {
			return false
		}
	}
	return true
}
