package query

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// paramFixture is a plan touching every parameter site kind: fact filter
// (int range + float), join build-side filter, CountIf condition and a
// Having threshold.
func paramFixture() *Plan {
	return Scan("sales").
		Named("pf").
		Filter(
			Between("day", Param("day_lo"), Param("day_hi")),
			Ge("amount", Param("min_amount")),
		).
		Join("product", "pid", "pid", "price").
		JoinFilter(Le("price", Param("max_price"))).
		GroupBy("day").
		Agg(
			Sum("amount").As("revenue"),
			CountIf(Ge("qty", Param("min_qty"))).As("bulk"),
		).
		Having(Gt("revenue", Param("min_revenue")))
}

// literalFixture is paramFixture with the values inlined.
func literalFixture(dayLo, dayHi int64, minAmount, maxPrice float64, minQty int64, minRevenue float64) *Plan {
	return Scan("sales").
		Named("pf").
		Filter(
			Between("day", dayLo, dayHi),
			Ge("amount", minAmount),
		).
		Join("product", "pid", "pid", "price").
		JoinFilter(Le("price", maxPrice)).
		GroupBy("day").
		Agg(
			Sum("amount").As("revenue"),
			CountIf(Ge("qty", minQty)).As("bulk"),
		).
		Having(Gt("revenue", minRevenue))
}

func pfArgs(dayLo, dayHi int64, minAmount, maxPrice float64, minQty int64, minRevenue float64) Args {
	return Args{
		"day_lo": dayLo, "day_hi": dayHi, "min_amount": minAmount,
		"max_price": maxPrice, "min_qty": minQty, "min_revenue": minRevenue,
	}
}

// TestParamStampMatchesLiteralBind stamps every site kind and requires
// results identical to binding the literal plan — across several
// argument sets reusing one prepared statement.
func TestParamStampMatchesLiteralBind(t *testing.T) {
	cat, e := newFixture(t)
	stmt, err := paramFixture().Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"day_hi", "day_lo", "max_price", "min_amount", "min_qty", "min_revenue"}
	if got := stmt.ParamNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ParamNames = %v, want %v", got, want)
	}
	cases := []struct {
		dayLo, dayHi int64
		minAmount    float64
		maxPrice     float64
		minQty       int64
		minRevenue   float64
	}{
		{1, 3, 0, 100, 0, 0},
		{1, 2, 5, 4, 2, 10},
		{2, 3, 0, 3.25, 3, 0},
		{3, 3, 100, 100, 1, 1e9}, // empty result: filters reject everything
	}
	for i, tc := range cases {
		q, err := stmt.WithArgs(pfArgs(tc.dayLo, tc.dayHi, tc.minAmount, tc.maxPrice, tc.minQty, tc.minRevenue))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		lit, err := literalFixture(tc.dayLo, tc.dayHi, tc.minAmount, tc.maxPrice, tc.minQty, tc.minRevenue).Bind(cat)
		if err != nil {
			t.Fatalf("case %d: literal bind: %v", i, err)
		}
		got, want := run(t, e, q), run(t, e, lit)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("case %d: stamped != literal\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestParamStringDictionary stamps a string parameter through the
// dictionary, including a value absent from it (never-match, like an
// inline unknown literal).
func TestParamStringDictionary(t *testing.T) {
	cat, e := newFixture(t)
	stmt, err := Scan("sales").
		Filter(Eq("tag", Param("tag"))).
		Agg(Count().As("n")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		tag  string
		want float64
	}{{"web", 3}, {"store", 2}, {"fax", 0}} {
		q, err := stmt.WithArgs(Args{"tag": tc.tag})
		if err != nil {
			t.Fatal(err)
		}
		if got := run(t, e, q).Rows[0][0]; got != tc.want {
			t.Errorf("tag=%q: count = %v, want %v", tc.tag, got, tc.want)
		}
	}
	// Ordered comparisons on string columns are rejected at Bind, for
	// parameters exactly like for literals.
	_, err = Scan("sales").
		Filter(Gt("tag", Param("tag"))).
		Agg(Count()).
		Bind(cat)
	if err == nil || !strings.Contains(err.Error(), "only Eq/Ne") {
		t.Fatalf("ordered string param bind = %v, want Eq/Ne error", err)
	}
}

// TestParamArgValidation covers the argument-set contract: unstamped
// statements refuse to execute, missing/unknown names fail, wrong value
// types fail with ErrPredType, and parameterless statements reject args.
func TestParamArgValidation(t *testing.T) {
	cat, _ := newFixture(t)
	stmt, err := Scan("sales").
		Filter(Ge("day", Param("since"))).
		Agg(Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if err := stmt.Err(); err == nil || !strings.Contains(err.Error(), "unbound parameters") {
		t.Fatalf("unstamped Err = %v, want unbound-parameters error", err)
	}
	if _, err := stmt.WithArgs(nil); err == nil {
		t.Fatal("missing argument must fail")
	}
	if _, err := stmt.WithArgs(Args{"since": 1, "until": 2}); err == nil {
		t.Fatal("unknown argument must fail")
	}
	if _, err := stmt.WithArgs(Args{"since": "monday"}); !errors.Is(err, ErrPredType) {
		t.Fatalf("string for int column = %v, want ErrPredType", err)
	}
	if _, err := stmt.WithArgs(Args{"since": 1.5}); !errors.Is(err, ErrPredType) {
		t.Fatalf("fractional for int column = %v, want ErrPredType", err)
	}
	q, err := stmt.WithArgs(Args{"since": 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Err(); err != nil {
		t.Fatalf("stamped Err = %v, want nil", err)
	}

	plain, err := Scan("sales").Filter(Ge("day", 0)).Agg(Count()).Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.WithArgs(Args{"x": 1}); err == nil {
		t.Fatal("args for parameterless statement must fail")
	}
	if got, err := plain.WithArgs(nil); err != nil || got != plain {
		t.Fatalf("WithArgs(nil) on parameterless = (%v, %v), want receiver", got, err)
	}
	if _, err := Scan("sales").
		Filter(Ge("day", Param(""))).
		Agg(Count()).
		Bind(cat); err == nil {
		t.Fatal("empty parameter name must fail at Bind")
	}
	// A literal mixed in beside a placeholder is type-checked at Bind,
	// not rediscovered on every stamping.
	if _, err := Scan("sales").
		Filter(Between("day", Param("lo"), "oops")).
		Agg(Count()).
		Bind(cat); !errors.Is(err, ErrPredType) {
		t.Fatalf("mixed bad literal at Bind = %v, want ErrPredType", err)
	}
	if _, err := Scan("sales").
		Filter(Between("day", Param("lo"), 9)).
		Agg(Count()).
		Bind(cat); err != nil {
		t.Fatalf("mixed good literal at Bind = %v, want nil", err)
	}
}

// TestStmtReuseFastPath: stamping the same values twice returns the
// cached clone (pointer-identical, zero work), different values re-stamp,
// and the cached statement still executes correctly after the cache has
// moved on.
func TestStmtReuseFastPath(t *testing.T) {
	cat, e := newFixture(t)
	stmt, err := paramFixture().Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	argsA := pfArgs(1, 3, 0, 100, 0, 0)
	qa1, err := stmt.WithArgs(argsA)
	if err != nil {
		t.Fatal(err)
	}
	qa2, err := stmt.WithArgs(pfArgs(1, 3, 0, 100, 0, 0)) // fresh map, same values
	if err != nil {
		t.Fatal(err)
	}
	if qa1 != qa2 {
		t.Fatal("identical args must hit the reuse cache (pointer-equal clone)")
	}
	qb, err := stmt.WithArgs(pfArgs(2, 3, 0, 3.25, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if qb == qa1 {
		t.Fatal("different args must produce a fresh stamping")
	}
	// The superseded clone keeps its values and results.
	wantA := run(t, e, qa1)
	litA, err := literalFixture(1, 3, 0, 100, 0, 0).Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantA, run(t, e, litA)) {
		t.Fatal("cached stamping diverged from literal bind")
	}
	// Stamping a clone feeds the same shared cache as the statement.
	qa3, err := qb.WithArgs(pfArgs(1, 3, 0, 100, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	qa4, err := stmt.WithArgs(pfArgs(1, 3, 0, 100, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if qa3 != qa4 {
		t.Fatal("clones must share the statement's reuse cache")
	}
}

// TestStmtReuseCacheDefensiveCopy: a caller mutating its args map after
// WithArgs must not poison the cache — the next call with the mutated
// values re-stamps instead of returning the stale clone.
func TestStmtReuseCacheDefensiveCopy(t *testing.T) {
	cat, e := newFixture(t)
	stmt, err := Scan("sales").
		Filter(Ge("day", Param("since"))).
		Agg(Count().As("n")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	args := Args{"since": int64(2)}
	q2, err := stmt.WithArgs(args)
	if err != nil {
		t.Fatal(err)
	}
	args["since"] = int64(3) // mutate the caller's map after the call
	q3, err := stmt.WithArgs(args)
	if err != nil {
		t.Fatal(err)
	}
	if q3 == q2 {
		t.Fatal("mutated args returned the stale cached stamping")
	}
	if got := run(t, e, q2).Rows[0][0]; got != 4 {
		t.Fatalf("since=2: count = %v, want 4", got)
	}
	if got := run(t, e, q3).Rows[0][0]; got != 2 {
		t.Fatalf("since=3: count = %v, want 2", got)
	}
}

// TestStmtReuseConcurrent hammers one prepared statement from many
// goroutines mixing cache hits and misses; run under -race this verifies
// the cache's synchronization and that every caller gets its own values.
func TestStmtReuseConcurrent(t *testing.T) {
	cat, e := newFixture(t)
	stmt, err := Scan("sales").
		Filter(Ge("day", Param("since"))).
		Agg(Count().As("n")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]float64{1: 6, 2: 4, 3: 2}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		since := int64(g%3 + 1)
		go func() {
			for i := 0; i < 50; i++ {
				q, err := stmt.WithArgs(Args{"since": since})
				if err != nil {
					done <- err
					return
				}
				if got := run(t, e, q).Rows[0][0]; got != want[since] {
					done <- errors.New("wrong count under concurrency")
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestStmtReuseBeatsRebind is the satellite's acceptance check: with the
// reuse cache, re-executing a statement with unchanged arguments must be
// strictly cheaper than rebinding the plan — zero allocations on a hit,
// and less time per stamping than a full Bind.
func TestStmtReuseBeatsRebind(t *testing.T) {
	cat, _ := newFixture(t)
	stmt, err := paramFixture().Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	args := pfArgs(1, 3, 0, 100, 0, 0)
	if _, err := stmt.WithArgs(args); err != nil { // prime the cache
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, err := stmt.WithArgs(args); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("cache hit allocates %v objects/op, want 0", allocs)
	}
	reuse := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stmt.WithArgs(args); err != nil {
				b.Fatal(err)
			}
		}
	})
	rebind := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := literalFixture(1, 3, 0, 100, 0, 0).Bind(cat); err != nil {
				b.Fatal(err)
			}
		}
	})
	if reuse.NsPerOp() >= rebind.NsPerOp() {
		t.Fatalf("reuse %v ns/op not faster than rebind %v ns/op", reuse.NsPerOp(), rebind.NsPerOp())
	}
}

// TestParamStampIsolation verifies WithArgs never mutates the prepared
// statement: two stampings coexist and the first keeps its values.
func TestParamStampIsolation(t *testing.T) {
	cat, e := newFixture(t)
	stmt, err := Scan("sales").
		Filter(Ge("day", Param("since"))).
		Agg(Count().As("n")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := stmt.WithArgs(Args{"since": 2})
	if err != nil {
		t.Fatal(err)
	}
	q3, err := stmt.WithArgs(Args{"since": 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := run(t, e, q3).Rows[0][0]; got != 2 {
		t.Fatalf("since=3: count = %v, want 2", got)
	}
	if got := run(t, e, q2).Rows[0][0]; got != 4 {
		t.Fatalf("since=2 after stamping since=3: count = %v, want 4", got)
	}
	if stmt.Err() == nil {
		t.Fatal("prepared statement must remain unstamped")
	}
}
