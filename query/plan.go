// Package query is a declarative, logical-plan query builder for
// elastichtap. A Plan describes an analytical query as relational-algebra
// steps over one fact table — scan, filter (σ), an inner or semi hash join
// against a dimension, group-by (γ), aggregate, post-aggregation filter
// (HAVING) and an ordered top-k — and compiles onto the OLAP engine's
// generic executor with predicate pushdown into block consumption and
// per-morsel partial aggregates merged deterministically at the end.
//
// Plans are built fluently, with joins expressed as a graph of edges
// between relations (see graph.go):
//
//	ol := query.Rel("orderline")
//	orders := query.Rel("orders").Filter(query.Eq("o_carrier_id", 0))
//	p := query.Scan("orderline").
//		JoinGraph(query.JoinOn(ol, orders,
//			"ol_w_id", "o_w_id", "ol_d_id", "o_d_id", "ol_o_id", "o_id")).
//		GroupBy("ol_w_id", "ol_d_id", "ol_o_id", "o_entry_d").
//		Agg(query.Sum("ol_amount").As("revenue")).
//		OrderBy("revenue", true).
//		Limit(10)
//	q, err := p.Bind(db) // db is any Catalog, e.g. *ch.DB
//
// The compiled query implements olap.Query, so it flows through the
// adaptive scheduler like the hand-written CH-benCHmark queries: the work
// class for the cost model (Algorithm 2's state choice) is inferred from
// the plan shape — JoinProject for a payload-projecting join, JoinProbe
// for an existence-only semi-join, ScanGroupBy when grouped, ScanReduce
// otherwise — and the ordered merge's sort volume is charged per row.
//
// Construction errors (unknown columns, type mismatches) accumulate in the
// plan and surface at Bind, so fluent chains never need mid-expression
// error checks.
package query

import (
	"fmt"

	"elastichtap/internal/costmodel"
)

// maxGroupCols bounds the composite group key width.
const maxGroupCols = 4

// maxJoinCols bounds the composite join key width (TPC-C primary keys use
// at most three columns: warehouse, district, sequence).
const maxJoinCols = 3

// op enumerates predicate comparisons.
type op int8

const (
	opEq op = iota
	opNe
	opGt
	opGe
	opLt
	opLe
	opBetween
	opNotBetween
)

func (o op) String() string {
	switch o {
	case opEq:
		return "="
	case opNe:
		return "!="
	case opGt:
		return ">"
	case opGe:
		return ">="
	case opLt:
		return "<"
	case opLe:
		return "<="
	case opBetween:
		return "between"
	case opNotBetween:
		return "not between"
	default:
		return fmt.Sprintf("op(%d)", int8(o))
	}
}

// Pred is one column predicate. Build with Eq, Ne, Gt, Ge, Lt, Le or
// Between; values may be any Go integer, float64, or (for Eq/Ne on string
// columns) a string. Predicates compile against the bound table's column
// types, so an int64 column is compared in integer space and a float64
// column in IEEE space.
type Pred struct {
	col    string
	op     op
	lo, hi any
}

// Col returns the column the predicate tests.
func (p Pred) Col() string { return p.col }

func (p Pred) String() string {
	if p.op == opBetween || p.op == opNotBetween {
		return fmt.Sprintf("%s %v %v and %v", p.col, p.op, p.lo, p.hi)
	}
	return fmt.Sprintf("%s %v %v", p.col, p.op, p.lo)
}

// Eq matches rows where col equals v.
func Eq(col string, v any) Pred { return Pred{col: col, op: opEq, lo: v} }

// Ne matches rows where col differs from v.
func Ne(col string, v any) Pred { return Pred{col: col, op: opNe, lo: v} }

// Gt matches rows where col is strictly greater than v.
func Gt(col string, v any) Pred { return Pred{col: col, op: opGt, lo: v} }

// Ge matches rows where col is at least v.
func Ge(col string, v any) Pred { return Pred{col: col, op: opGe, lo: v} }

// Lt matches rows where col is strictly less than v.
func Lt(col string, v any) Pred { return Pred{col: col, op: opLt, lo: v} }

// Le matches rows where col is at most v.
func Le(col string, v any) Pred { return Pred{col: col, op: opLe, lo: v} }

// Between matches rows where lo <= col <= hi (both ends inclusive).
func Between(col string, lo, hi any) Pred { return Pred{col: col, op: opBetween, lo: lo, hi: hi} }

// Not negates a predicate. Ordered comparisons flip (Not(Gt) is Le),
// equality flips to inequality and vice versa, and Between becomes an
// outside-the-range test.
func Not(p Pred) Pred {
	switch p.op {
	case opEq:
		p.op = opNe
	case opNe:
		p.op = opEq
	case opGt:
		p.op = opLe
	case opGe:
		p.op = opLt
	case opLt:
		p.op = opGe
	case opLe:
		p.op = opGt
	case opBetween:
		p.op = opNotBetween
	case opNotBetween:
		p.op = opBetween
	}
	return p
}

// aggKind enumerates aggregate functions.
type aggKind int8

const (
	aggSum aggKind = iota
	aggAvg
	aggMin
	aggMax
	aggCount
	aggCountIf
)

func (k aggKind) String() string {
	switch k {
	case aggSum:
		return "sum"
	case aggAvg:
		return "avg"
	case aggMin:
		return "min"
	case aggMax:
		return "max"
	case aggCount:
		return "count"
	case aggCountIf:
		return "count_if"
	default:
		return fmt.Sprintf("agg(%d)", int8(k))
	}
}

// Agg is one aggregate output column. Build with Sum, Avg, Min, Max,
// Count or CountIf, and optionally rename with As.
type Agg struct {
	kind aggKind
	col  string
	name string
	cond *Pred // aggCountIf: counted only where cond holds
}

// Sum totals a numeric column over each group.
func Sum(col string) Agg { return Agg{kind: aggSum, col: col} }

// Avg averages a numeric column over each group.
func Avg(col string) Agg { return Agg{kind: aggAvg, col: col} }

// Min tracks the minimum of a numeric column over each group.
func Min(col string) Agg { return Agg{kind: aggMin, col: col} }

// Max tracks the maximum of a numeric column over each group.
func Max(col string) Agg { return Agg{kind: aggMax, col: col} }

// Count counts the rows in each group.
func Count() Agg { return Agg{kind: aggCount} }

// CountIf counts the rows in each group satisfying cond — SQL's
// COUNT(CASE WHEN cond THEN 1 END). The condition may test a scanned fact
// column or a join payload column; combine with Not for the complement
// bucket.
func CountIf(cond Pred) Agg { return Agg{kind: aggCountIf, col: cond.col, cond: &cond} }

// As renames the aggregate's output column.
func (a Agg) As(name string) Agg { a.name = name; return a }

// outName returns the result-column name for the aggregate.
func (a Agg) outName() string {
	if a.name != "" {
		return a.name
	}
	if a.kind == aggCount {
		return "count"
	}
	return fmt.Sprintf("%s_%s", a.kind, a.col)
}

// joinSpec is a hash-join step against one dimension table: fact rows whose
// factKeys match dimKeys in some dimension row passing preds survive. With
// an empty payload the join keeps existence only (SemiJoin); a non-empty
// payload additionally projects the matched dimension row's columns into
// the downstream group-by and aggregation.
type joinSpec struct {
	dim      string
	factKeys []string
	dimKeys  []string
	payload  []string
	preds    []Pred
}

// Plan is a logical analytical query under construction. The zero value is
// unusable; start from Scan. Methods return the receiver for chaining and
// record the first construction error for Bind to surface.
type Plan struct {
	name      string
	table     string
	scanCols  []string
	preds     []Pred
	joins     []*joinSpec
	graph     []JoinEdge
	joinOrder JoinOrder
	groups    []string
	aggs      []Agg
	having    []Pred
	orderCol  string
	orderDesc bool
	limit     int
	err       error
}

// Scan starts a plan over a fact table. The optional cols fix the scan's
// column order (every column the plan references must be listed); when
// omitted, the scan list is inferred from the plan in reference order.
func Scan(table string, cols ...string) *Plan {
	p := &Plan{table: table, scanCols: cols}
	if table == "" {
		p.fail(fmt.Errorf("query: Scan with empty table name"))
	}
	return p
}

func (p *Plan) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// Named sets the query's display name (QueryReport.Query); the default is
// "scan(<table>)".
func (p *Plan) Named(name string) *Plan {
	p.name = name
	return p
}

// Filter appends predicates; all must hold for a row to survive (σ). The
// predicates are pushed into block consumption, so rejected rows never
// reach the join probe or the aggregation kernels.
func (p *Plan) Filter(preds ...Pred) *Plan {
	for _, pr := range preds {
		if pr.col == "" {
			p.fail(fmt.Errorf("query: predicate with empty column name"))
		}
	}
	p.preds = append(p.preds, preds...)
	return p
}

// SemiJoin keeps fact rows whose factKey matches dimKey in some dimension
// row passing dimPreds — the existence form of a fact-dimension hash join.
// The dimension rows are read at Prepare time (dimensions are static under
// the transactional workload) and the build side is charged as broadcast
// bytes, so the cost model prices it like the paper's broadcast join.
//
// Deprecated: SemiJoin is the linear single-join surface, kept as a thin
// shim over the graph form; it compiles exactly like the one-edge graph
// JoinGraph(JoinOn(fact, dim, factKey, dimKey)) with dim filtered by
// dimPreds. New code should use JoinGraph, which also expresses n-way
// join graphs. At most one shim join per plan; extend composite keys
// with On.
func (p *Plan) SemiJoin(dim, factKey, dimKey string, dimPreds ...Pred) *Plan {
	if len(p.graph) > 0 {
		p.fail(fmt.Errorf("query: SemiJoin cannot be mixed with JoinGraph"))
		return p
	}
	if len(p.joins) > 0 {
		p.fail(fmt.Errorf("query: plan already has a join (%s)", p.joins[0].dim))
		return p
	}
	if dim == "" || factKey == "" || dimKey == "" {
		p.fail(fmt.Errorf("query: SemiJoin needs dimension, fact-key and dim-key names"))
		return p
	}
	p.joins = append(p.joins, &joinSpec{
		dim: dim, factKeys: []string{factKey}, dimKeys: []string{dimKey},
		preds: dimPreds,
	})
	return p
}

// Join is an inner fact-dimension hash join: fact rows whose factKey
// matches dimKey in some dimension row survive, and the dimension's
// payloadCols become referenceable downstream — as GroupBy keys, aggregate
// inputs and CountIf conditions — exactly like scanned fact columns. The
// dimension key must be unique among rows passing JoinFilter (a primary
// key); when it is not, the last matching row's payload wins. The build
// side (keys, payload and predicate columns) is read at Prepare time and
// charged as broadcast bytes.
//
// Deprecated: Join is the linear single-join surface, kept as a thin shim
// over the graph form; it compiles exactly like the one-edge graph
// JoinGraph(JoinOn(fact, dim, factKey, dimKey)) with payloadCols demanded
// downstream. New code should use JoinGraph, which also expresses n-way
// join graphs and infers payloads. At most one shim join per plan; extend
// composite keys with On and filter the build side with JoinFilter.
func (p *Plan) Join(dim, factKey, dimKey string, payloadCols ...string) *Plan {
	if len(p.graph) > 0 {
		p.fail(fmt.Errorf("query: Join cannot be mixed with JoinGraph"))
		return p
	}
	if len(p.joins) > 0 {
		p.fail(fmt.Errorf("query: plan already has a join (%s)", p.joins[0].dim))
		return p
	}
	if dim == "" || factKey == "" || dimKey == "" {
		p.fail(fmt.Errorf("query: Join needs dimension, fact-key and dim-key names"))
		return p
	}
	for _, c := range payloadCols {
		if c == "" {
			p.fail(fmt.Errorf("query: Join with empty payload column name"))
			return p
		}
	}
	p.joins = append(p.joins, &joinSpec{
		dim: dim, factKeys: []string{factKey}, dimKeys: []string{dimKey},
		payload: payloadCols,
	})
	return p
}

// On appends a key-column pair to the plan's join, building a composite
// equi-join key (orderline ⋈ orders matches on warehouse, district and
// order id). Valid after Join or SemiJoin only.
//
// Deprecated: On extends the linear join shims; graph plans list all
// key pairs in their JoinOn edges instead.
func (p *Plan) On(factKey, dimKey string) *Plan {
	if len(p.joins) == 0 {
		p.fail(fmt.Errorf("query: On before Join/SemiJoin"))
		return p
	}
	j := p.joins[len(p.joins)-1]
	if factKey == "" || dimKey == "" {
		p.fail(fmt.Errorf("query: On with empty key name"))
		return p
	}
	if len(j.factKeys) >= maxJoinCols {
		p.fail(fmt.Errorf("query: join key exceeds %d columns", maxJoinCols))
		return p
	}
	j.factKeys = append(j.factKeys, factKey)
	j.dimKeys = append(j.dimKeys, dimKey)
	return p
}

// JoinFilter appends predicates over the join's dimension table; only
// dimension rows passing all of them enter the build side. Valid after
// Join or SemiJoin only.
//
// Deprecated: JoinFilter extends the linear join shims; graph plans
// filter relations with Relation.Filter instead.
func (p *Plan) JoinFilter(preds ...Pred) *Plan {
	if len(p.joins) == 0 {
		p.fail(fmt.Errorf("query: JoinFilter before Join/SemiJoin"))
		return p
	}
	j := p.joins[len(p.joins)-1]
	for _, pr := range preds {
		if pr.col == "" {
			p.fail(fmt.Errorf("query: predicate with empty column name"))
		}
	}
	j.preds = append(j.preds, preds...)
	return p
}

// GroupBy sets the grouping keys (γ). Group columns must be int64-typed
// (ids, dates, codes); result rows carry the key values first, ordered
// ascending by key.
func (p *Plan) GroupBy(cols ...string) *Plan {
	if len(p.groups) > 0 {
		p.fail(fmt.Errorf("query: GroupBy called twice"))
		return p
	}
	if len(cols) > maxGroupCols {
		p.fail(fmt.Errorf("query: %d group columns, max %d", len(cols), maxGroupCols))
		return p
	}
	for _, c := range cols {
		if c == "" {
			p.fail(fmt.Errorf("query: GroupBy with empty column name"))
			return p
		}
	}
	p.groups = cols
	return p
}

// Agg appends aggregate outputs. Every plan needs at least one.
func (p *Plan) Agg(aggs ...Agg) *Plan {
	p.aggs = append(p.aggs, aggs...)
	return p
}

// Having appends post-aggregation predicates over output columns — group
// keys or aggregate names (after As renaming). Rows failing any predicate
// are dropped after the merge, before OrderBy and Limit. Comparisons run
// in float64 space, the type of every emitted cell.
func (p *Plan) Having(preds ...Pred) *Plan {
	for _, pr := range preds {
		if pr.col == "" {
			p.fail(fmt.Errorf("query: Having predicate with empty column name"))
		}
	}
	p.having = append(p.having, preds...)
	return p
}

// OrderBy sorts the result by an output column — a group key or an
// aggregate name (after As renaming) — descending when desc is true. Ties
// break on the remaining output columns ascending, left to right, so the
// order is total whenever group keys are distinct (always, for grouped
// plans) and results stay bitwise deterministic under work stealing and
// mid-query pool resizes.
func (p *Plan) OrderBy(col string, desc bool) *Plan {
	if p.orderCol != "" {
		p.fail(fmt.Errorf("query: OrderBy called twice"))
		return p
	}
	if col == "" {
		p.fail(fmt.Errorf("query: OrderBy with empty column name"))
		return p
	}
	p.orderCol, p.orderDesc = col, desc
	return p
}

// Limit keeps only the first n rows of the ordered result (top-k). It
// requires OrderBy — an unordered limit would make results depend on
// morsel interleaving.
func (p *Plan) Limit(n int) *Plan {
	if p.limit > 0 {
		p.fail(fmt.Errorf("query: Limit called twice"))
		return p
	}
	if n <= 0 {
		p.fail(fmt.Errorf("query: Limit %d, need > 0", n))
		return p
	}
	p.limit = n
	return p
}

// Name returns the display name the compiled query will carry.
func (p *Plan) Name() string {
	if p.name != "" {
		return p.name
	}
	return fmt.Sprintf("scan(%s)", p.table)
}

// Class infers the cost-model work class from the plan shape: a
// payload-projecting join materializes dimension columns per matched row
// (JoinProject, the heaviest pipeline), an existence-only semi-join probes
// per row (JoinProbe), grouping hashes per row (ScanGroupBy), and a bare
// filtered aggregation streams (ScanReduce). The scheduler's Algorithm 2
// uses this to time the pipeline when choosing S1/S2/S3; the ordered
// merge's sort volume is charged separately per merged row.
func (p *Plan) Class() costmodel.WorkClass {
	payload := false
	for _, j := range p.joins {
		if len(j.payload) > 0 {
			payload = true
		}
	}
	switch {
	case payload || len(p.graph) > 0:
		// Graph plans infer payloads at Bind; until then the heavier class
		// is assumed (Bind fixes the compiled class exactly).
		return costmodel.JoinProject
	case len(p.joins) > 0:
		return costmodel.JoinProbe
	case len(p.groups) > 0:
		return costmodel.ScanGroupBy
	default:
		return costmodel.ScanReduce
	}
}

// Err returns the first construction error, if any, without binding.
func (p *Plan) Err() error { return p.err }
