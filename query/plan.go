// Package query is a declarative, logical-plan query builder for
// elastichtap. A Plan describes an analytical query as relational-algebra
// steps over one fact table — scan, filter (σ), semi-join against a
// dimension, group-by (γ) and aggregate — and compiles onto the OLAP
// engine's generic executor with predicate pushdown into block consumption
// and per-worker partial aggregates merged at the end.
//
// Plans are built fluently:
//
//	p := query.Scan("orderline").
//		Filter(query.Ge("ol_delivery_d", today)).
//		GroupBy("ol_w_id").
//		Agg(query.Sum("ol_amount").As("revenue"), query.Count())
//	q, err := p.Bind(db) // db is any Catalog, e.g. *ch.DB
//
// The compiled query implements olap.Query, so it flows through the
// adaptive scheduler like the hand-written CH-benCHmark queries: the work
// class for the cost model (Algorithm 2's state choice) is inferred from
// the plan shape — JoinProbe when a semi-join is present, ScanGroupBy when
// grouped, ScanReduce otherwise.
//
// Construction errors (unknown columns, type mismatches) accumulate in the
// plan and surface at Bind, so fluent chains never need mid-expression
// error checks.
package query

import (
	"fmt"

	"elastichtap/internal/costmodel"
)

// maxGroupCols bounds the composite group key width.
const maxGroupCols = 4

// op enumerates predicate comparisons.
type op int8

const (
	opEq op = iota
	opNe
	opGt
	opGe
	opLt
	opLe
	opBetween
)

func (o op) String() string {
	switch o {
	case opEq:
		return "="
	case opNe:
		return "!="
	case opGt:
		return ">"
	case opGe:
		return ">="
	case opLt:
		return "<"
	case opLe:
		return "<="
	case opBetween:
		return "between"
	default:
		return fmt.Sprintf("op(%d)", int8(o))
	}
}

// Pred is one column predicate. Build with Eq, Ne, Gt, Ge, Lt, Le or
// Between; values may be any Go integer, float64, or (for Eq/Ne on string
// columns) a string. Predicates compile against the bound table's column
// types, so an int64 column is compared in integer space and a float64
// column in IEEE space.
type Pred struct {
	col    string
	op     op
	lo, hi any
}

// Col returns the column the predicate tests.
func (p Pred) Col() string { return p.col }

func (p Pred) String() string {
	if p.op == opBetween {
		return fmt.Sprintf("%s between %v and %v", p.col, p.lo, p.hi)
	}
	return fmt.Sprintf("%s %v %v", p.col, p.op, p.lo)
}

// Eq matches rows where col equals v.
func Eq(col string, v any) Pred { return Pred{col: col, op: opEq, lo: v} }

// Ne matches rows where col differs from v.
func Ne(col string, v any) Pred { return Pred{col: col, op: opNe, lo: v} }

// Gt matches rows where col is strictly greater than v.
func Gt(col string, v any) Pred { return Pred{col: col, op: opGt, lo: v} }

// Ge matches rows where col is at least v.
func Ge(col string, v any) Pred { return Pred{col: col, op: opGe, lo: v} }

// Lt matches rows where col is strictly less than v.
func Lt(col string, v any) Pred { return Pred{col: col, op: opLt, lo: v} }

// Le matches rows where col is at most v.
func Le(col string, v any) Pred { return Pred{col: col, op: opLe, lo: v} }

// Between matches rows where lo <= col <= hi (both ends inclusive).
func Between(col string, lo, hi any) Pred { return Pred{col: col, op: opBetween, lo: lo, hi: hi} }

// aggKind enumerates aggregate functions.
type aggKind int8

const (
	aggSum aggKind = iota
	aggAvg
	aggMin
	aggMax
	aggCount
)

func (k aggKind) String() string {
	switch k {
	case aggSum:
		return "sum"
	case aggAvg:
		return "avg"
	case aggMin:
		return "min"
	case aggMax:
		return "max"
	case aggCount:
		return "count"
	default:
		return fmt.Sprintf("agg(%d)", int8(k))
	}
}

// Agg is one aggregate output column. Build with Sum, Avg, Min, Max or
// Count, and optionally rename with As.
type Agg struct {
	kind aggKind
	col  string
	name string
}

// Sum totals a numeric column over each group.
func Sum(col string) Agg { return Agg{kind: aggSum, col: col} }

// Avg averages a numeric column over each group.
func Avg(col string) Agg { return Agg{kind: aggAvg, col: col} }

// Min tracks the minimum of a numeric column over each group.
func Min(col string) Agg { return Agg{kind: aggMin, col: col} }

// Max tracks the maximum of a numeric column over each group.
func Max(col string) Agg { return Agg{kind: aggMax, col: col} }

// Count counts the rows in each group.
func Count() Agg { return Agg{kind: aggCount} }

// As renames the aggregate's output column.
func (a Agg) As(name string) Agg { a.name = name; return a }

// outName returns the result-column name for the aggregate.
func (a Agg) outName() string {
	if a.name != "" {
		return a.name
	}
	if a.kind == aggCount {
		return "count"
	}
	return fmt.Sprintf("%s_%s", a.kind, a.col)
}

// semiSpec is a semi-join step: keep fact rows whose factKey appears in the
// dimension's dimKey column among dimension rows passing preds.
type semiSpec struct {
	dim     string
	factKey string
	dimKey  string
	preds   []Pred
}

// Plan is a logical analytical query under construction. The zero value is
// unusable; start from Scan. Methods return the receiver for chaining and
// record the first construction error for Bind to surface.
type Plan struct {
	name     string
	table    string
	scanCols []string
	preds    []Pred
	semi     *semiSpec
	groups   []string
	aggs     []Agg
	err      error
}

// Scan starts a plan over a fact table. The optional cols fix the scan's
// column order (every column the plan references must be listed); when
// omitted, the scan list is inferred from the plan in reference order.
func Scan(table string, cols ...string) *Plan {
	p := &Plan{table: table, scanCols: cols}
	if table == "" {
		p.fail(fmt.Errorf("query: Scan with empty table name"))
	}
	return p
}

func (p *Plan) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// Named sets the query's display name (QueryReport.Query); the default is
// "scan(<table>)".
func (p *Plan) Named(name string) *Plan {
	p.name = name
	return p
}

// Filter appends predicates; all must hold for a row to survive (σ). The
// predicates are pushed into block consumption, so rejected rows never
// reach the join probe or the aggregation kernels.
func (p *Plan) Filter(preds ...Pred) *Plan {
	for _, pr := range preds {
		if pr.col == "" {
			p.fail(fmt.Errorf("query: predicate with empty column name"))
		}
	}
	p.preds = append(p.preds, preds...)
	return p
}

// SemiJoin keeps fact rows whose factKey matches dimKey in some dimension
// row passing dimPreds — the existence form of a fact-dimension hash join.
// The dimension rows are read at Prepare time (dimensions are static under
// the transactional workload) and the build side is charged as broadcast
// bytes, so the cost model prices it like the paper's broadcast join.
// At most one semi-join per plan.
func (p *Plan) SemiJoin(dim, factKey, dimKey string, dimPreds ...Pred) *Plan {
	if p.semi != nil {
		p.fail(fmt.Errorf("query: plan already has a semi-join (%s)", p.semi.dim))
		return p
	}
	if dim == "" || factKey == "" || dimKey == "" {
		p.fail(fmt.Errorf("query: SemiJoin needs dimension, fact-key and dim-key names"))
		return p
	}
	p.semi = &semiSpec{dim: dim, factKey: factKey, dimKey: dimKey, preds: dimPreds}
	return p
}

// GroupBy sets the grouping keys (γ). Group columns must be int64-typed
// (ids, dates, codes); result rows carry the key values first, ordered
// ascending by key.
func (p *Plan) GroupBy(cols ...string) *Plan {
	if len(p.groups) > 0 {
		p.fail(fmt.Errorf("query: GroupBy called twice"))
		return p
	}
	if len(cols) > maxGroupCols {
		p.fail(fmt.Errorf("query: %d group columns, max %d", len(cols), maxGroupCols))
		return p
	}
	for _, c := range cols {
		if c == "" {
			p.fail(fmt.Errorf("query: GroupBy with empty column name"))
			return p
		}
	}
	p.groups = cols
	return p
}

// Agg appends aggregate outputs. Every plan needs at least one.
func (p *Plan) Agg(aggs ...Agg) *Plan {
	p.aggs = append(p.aggs, aggs...)
	return p
}

// Name returns the display name the compiled query will carry.
func (p *Plan) Name() string {
	if p.name != "" {
		return p.name
	}
	return fmt.Sprintf("scan(%s)", p.table)
}

// Class infers the cost-model work class from the plan shape: a semi-join
// probes per row (JoinProbe), grouping hashes per row (ScanGroupBy), and a
// bare filtered aggregation streams (ScanReduce). The scheduler's
// Algorithm 2 uses this to time the pipeline when choosing S1/S2/S3.
func (p *Plan) Class() costmodel.WorkClass {
	switch {
	case p.semi != nil:
		return costmodel.JoinProbe
	case len(p.groups) > 0:
		return costmodel.ScanGroupBy
	default:
		return costmodel.ScanReduce
	}
}

// Err returns the first construction error, if any, without binding.
func (p *Plan) Err() error { return p.err }
