//lint:file-ignore SA1019 this file exercises the deprecated linear join
// shims (Join, SemiJoin, On, JoinFilter) on purpose, pinning the
// shim-equals-graph equivalence until removal.

package query

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

// testCatalog adapts an oltp.Engine to the Catalog interface.
type testCatalog struct{ e *oltp.Engine }

func (c testCatalog) Handle(name string) *oltp.TableHandle { return c.e.Table(name) }

// newFixture loads a small sales/product pair:
//
//	sales(day int, pid int, qty int, amount float, tag string)
//	product(pid int, price float)
func newFixture(t *testing.T) (Catalog, *oltp.Engine) {
	t.Helper()
	e := oltp.NewEngine()
	sales := e.CreateTable(columnar.Schema{Name: "sales", Columns: []columnar.ColumnDef{
		{Name: "day", Type: columnar.Int64},
		{Name: "pid", Type: columnar.Int64},
		{Name: "qty", Type: columnar.Int64},
		{Name: "amount", Type: columnar.Float64},
		{Name: "tag", Type: columnar.String},
	}}, 16, false)
	st := sales.Table()
	var rows [][]int64
	for _, r := range []struct {
		day, pid, qty int
		amount        float64
		tag           string
	}{
		{1, 1, 2, 10.5, "web"},
		{1, 2, 1, 3.25, "store"},
		{2, 1, 4, 21.0, "web"},
		{2, 3, 3, 9.0, "web"},
		{3, 2, 5, 16.25, "store"},
		{3, 3, 1, 3.0, "phone"},
	} {
		rows = append(rows, st.EncodeRow(r.day, r.pid, r.qty, r.amount, r.tag))
	}
	st.AppendRows(rows, 0)

	product := e.CreateTable(columnar.Schema{Name: "product", Columns: []columnar.ColumnDef{
		{Name: "pid", Type: columnar.Int64},
		{Name: "price", Type: columnar.Float64},
		{Name: "category", Type: columnar.String},
	}}, 4, false)
	pt := product.Table()
	pt.AppendRows([][]int64{
		pt.EncodeRow(1, 5.25, "tools"),
		pt.EncodeRow(2, 3.25, "toys"),
		pt.EncodeRow(3, 3.0, "toys"),
	}, 0)

	// daily has a composite (day, pid) primary key for multi-column joins.
	daily := e.CreateTable(columnar.Schema{Name: "daily", Columns: []columnar.ColumnDef{
		{Name: "day", Type: columnar.Int64},
		{Name: "pid", Type: columnar.Int64},
		{Name: "factor", Type: columnar.Int64},
	}}, 8, false)
	dt := daily.Table()
	dt.AppendRows([][]int64{
		dt.EncodeRow(1, 1, 10),
		dt.EncodeRow(1, 2, 20),
		dt.EncodeRow(2, 1, 30),
		dt.EncodeRow(2, 3, 40),
		dt.EncodeRow(3, 2, 50),
		dt.EncodeRow(3, 3, 60),
	}, 0)
	return testCatalog{e}, e
}

func run(t *testing.T, e *oltp.Engine, q olap.Query) olap.Result {
	t.Helper()
	tab := e.Table(q.FactTable()).Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "test",
	}}}
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{1}})
	res, _, err := eng.ExecuteContext(context.Background(), q, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFilterGroupByAggregate(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Filter(Ge("day", 2)).
		GroupBy("pid").
		Agg(Sum("amount").As("revenue"), Sum("qty"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	wantCols := []string{"pid", "revenue", "sum_qty", "count"}
	if !reflect.DeepEqual(res.Cols, wantCols) {
		t.Fatalf("cols = %v, want %v", res.Cols, wantCols)
	}
	want := [][]float64{
		{1, 21.0, 4, 1},
		{2, 16.25, 5, 1},
		{3, 12.0, 4, 2},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestUngroupedAggregatesAndMinMax(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Agg(Min("amount"), Max("amount"), Avg("qty"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{3.0, 21.0, 16.0 / 6.0, 6}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestEmptySelectionStillEmitsUngroupedRow(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Filter(Gt("day", 100)).
		Agg(Sum("amount"), Avg("amount"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{0, 0, 0}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestStringEqualityPredicate(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Filter(Eq("tag", "web")).
		Agg(Sum("amount").As("revenue"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{40.5, 3}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}

	// An unknown dictionary string matches nothing (Eq) / everything (Ne).
	q2, err := Scan("sales").Filter(Eq("tag", "fax")).Agg(Count()).Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if res := run(t, e, q2); res.Rows[0][0] != 0 {
		t.Fatalf("unknown Eq matched %v rows", res.Rows[0][0])
	}
	q3, err := Scan("sales").Filter(Ne("tag", "fax")).Agg(Count()).Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if res := run(t, e, q3); res.Rows[0][0] != 6 {
		t.Fatalf("unknown Ne matched %v rows", res.Rows[0][0])
	}
}

func TestSemiJoinWithDimensionPredicate(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		SemiJoin("product", "pid", "pid", Gt("price", 3.1)).
		Agg(Sum("amount").As("revenue"), Count().As("matches")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Class() != costmodel.JoinProbe {
		t.Fatalf("class = %v, want JoinProbe", q.Class())
	}
	// Products 1 (5.25) and 2 (3.25) qualify; sales rows for pid 1,2.
	res := run(t, e, q)
	want := [][]float64{{10.5 + 3.25 + 21.0 + 16.25, 4}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	// Broadcast charge: 3 dim rows x (key + price) x 8 bytes.
	_, buildBytes := q.Prepare()
	if buildBytes != 3*2*columnar.WordBytes {
		t.Fatalf("buildBytes = %d", buildBytes)
	}
}

func TestMultiColumnGroupKey(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		GroupBy("day", "pid").
		Agg(Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	if len(res.Rows) != 6 {
		t.Fatalf("%d groups, want 6", len(res.Rows))
	}
	// Sorted ascending by (day, pid).
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("rows not sorted: %v", res.Rows)
		}
	}
}

func TestClassInference(t *testing.T) {
	if c := Scan("sales").Agg(Count()).Class(); c != costmodel.ScanReduce {
		t.Errorf("reduce class = %v", c)
	}
	if c := Scan("sales").GroupBy("pid").Agg(Count()).Class(); c != costmodel.ScanGroupBy {
		t.Errorf("groupby class = %v", c)
	}
	if c := Scan("sales").SemiJoin("product", "pid", "pid").GroupBy("pid").Agg(Count()).Class(); c != costmodel.JoinProbe {
		t.Errorf("join class = %v", c)
	}
}

func TestExplicitProjection(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales", "day", "qty", "amount").
		Filter(Ge("day", 2)).
		Agg(Sum("amount"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Columns()); got != 3 {
		t.Fatalf("scan width %d, want 3", got)
	}
	res := run(t, e, q)
	if res.Rows[0][1] != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Referencing a column outside the projection is a bind error.
	_, err = Scan("sales", "day").Filter(Ge("qty", 1)).Agg(Count()).Bind(cat)
	if err == nil || !strings.Contains(err.Error(), "projection") {
		t.Fatalf("err = %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	cat, _ := newFixture(t)
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"unknown-table", Scan("nope").Agg(Count()), "unknown table"},
		{"unknown-column", Scan("sales").Filter(Eq("color", 1)).Agg(Count()), "no column"},
		{"no-aggregates", Scan("sales").Filter(Eq("day", 1)), "no aggregates"},
		{"string-group", Scan("sales").GroupBy("tag").Agg(Count()), "int64 keys"},
		{"empty-group", Scan("sales").GroupBy("").Agg(Count()), "empty column"},
		{"string-order", Scan("sales").Filter(Gt("tag", "a")).Agg(Count()), "Eq/Ne"},
		{"string-sum", Scan("sales").Agg(Sum("tag")), "string column"},
		{"fractional-int", Scan("sales").Filter(Eq("day", 1.5)).Agg(Count()), "non-integral"},
		{"double-groupby", Scan("sales").GroupBy("day").GroupBy("pid").Agg(Count()), "GroupBy called twice"},
		{"double-semijoin",
			Scan("sales").SemiJoin("product", "pid", "pid").SemiJoin("product", "pid", "pid").Agg(Count()),
			"already has a join"},
		{"unknown-dim", Scan("sales").SemiJoin("nope", "pid", "pid").Agg(Count()), "unknown dimension"},
		{"unknown-dim-col", Scan("sales").SemiJoin("product", "pid", "sku").Agg(Count()), "no column"},
		{"empty-table", Scan("").Agg(Count()), "empty table"},
	}
	for _, tc := range cases {
		_, err := tc.plan.Bind(cat)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := Scan("sales").Agg(Count()).Bind(nil); err == nil || !strings.Contains(err.Error(), "nil catalog") {
		t.Errorf("nil catalog: err = %v", err)
	}
	var nilPlan *Plan
	if _, err := nilPlan.Bind(cat); err == nil {
		t.Error("nil plan bound")
	}
}

func TestJoinProjectsPayloadIntoAggregation(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Join("product", "pid", "pid", "price").
		GroupBy("day").
		Agg(Sum("price").As("price_sum"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Class() != costmodel.JoinProject {
		t.Fatalf("class = %v, want JoinProject", q.Class())
	}
	res := run(t, e, q)
	wantCols := []string{"day", "price_sum", "count"}
	if !reflect.DeepEqual(res.Cols, wantCols) {
		t.Fatalf("cols = %v, want %v", res.Cols, wantCols)
	}
	// Per day, the joined product prices: day 1 -> 5.25+3.25, day 2 ->
	// 5.25+3.0, day 3 -> 3.25+3.0.
	want := [][]float64{
		{1, 8.5, 2},
		{2, 8.25, 2},
		{3, 6.25, 2},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	// Broadcast charge: 3 dim rows x (key + price payload) x 8 bytes.
	_, buildBytes := q.Prepare()
	if buildBytes != 3*2*columnar.WordBytes {
		t.Fatalf("buildBytes = %d", buildBytes)
	}
}

func TestJoinFilterRestrictsBuildSide(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Join("product", "pid", "pid", "price").
		JoinFilter(Gt("price", 3.1)).
		Agg(Sum("amount").As("revenue"), Sum("price"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	// Products 1 (5.25) and 2 (3.25) qualify; sales rows for pid 1, 2.
	res := run(t, e, q)
	want := [][]float64{{10.5 + 3.25 + 21.0 + 16.25, 5.25 + 3.25 + 5.25 + 3.25, 4}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestCompositeJoinKey(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Join("daily", "day", "day", "factor").
		On("pid", "pid").
		GroupBy("day").
		Agg(Sum("factor").As("fsum")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{1, 30}, {2, 70}, {3, 110}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	// Broadcast charge: 6 dim rows x (2 keys + factor payload) x 8 bytes.
	_, buildBytes := q.Prepare()
	if buildBytes != 6*3*columnar.WordBytes {
		t.Fatalf("buildBytes = %d", buildBytes)
	}
}

func TestOrderByLimitTopK(t *testing.T) {
	cat, e := newFixture(t)
	// Revenue by product: pid 1 -> 31.5, pid 2 -> 19.5, pid 3 -> 12.
	q, err := Scan("sales").
		GroupBy("pid").
		Agg(Sum("amount").As("revenue")).
		OrderBy("revenue", true).
		Limit(2).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{1, 31.5}, {2, 19.5}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	if res.SortedRows != 3 {
		t.Fatalf("SortedRows = %d, want 3 (rows sorted, not rows kept)", res.SortedRows)
	}

	// Ascending without a limit orders the full set and reports its size.
	q2, err := Scan("sales").
		GroupBy("pid").
		Agg(Sum("amount").As("revenue")).
		OrderBy("revenue", false).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res2 := run(t, e, q2)
	want2 := [][]float64{{3, 12}, {2, 19.5}, {1, 31.5}}
	if !reflect.DeepEqual(res2.Rows, want2) {
		t.Fatalf("rows = %v, want %v", res2.Rows, want2)
	}
	if res2.SortedRows != 3 {
		t.Fatalf("SortedRows = %d", res2.SortedRows)
	}
}

func TestOrderByBreaksTiesOnRemainingColumns(t *testing.T) {
	cat, e := newFixture(t)
	// count per (day) is 2 for every day: the order column ties everywhere,
	// so the group key must decide deterministically (ascending).
	q, err := Scan("sales").
		GroupBy("day").
		Agg(Count()).
		OrderBy("count", true).
		Limit(2).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{1, 2}, {2, 2}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestHavingFiltersAfterAggregation(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		GroupBy("pid").
		Agg(Sum("amount").As("revenue"), Count()).
		Having(Gt("revenue", 15)).
		OrderBy("revenue", true).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{1, 31.5, 2}, {2, 19.5, 2}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	if res.SortedRows != 2 {
		t.Fatalf("SortedRows = %d, want 2 (Having runs before the sort)", res.SortedRows)
	}

	// Having may also test group keys, and works without OrderBy.
	q2, err := Scan("sales").
		GroupBy("pid").
		Agg(Count()).
		Having(Between("pid", 2, 3)).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res2 := run(t, e, q2)
	want2 := [][]float64{{2, 2}, {3, 2}}
	if !reflect.DeepEqual(res2.Rows, want2) {
		t.Fatalf("rows = %v, want %v", res2.Rows, want2)
	}
}

func TestCountIfAndNot(t *testing.T) {
	cat, e := newFixture(t)
	bulk := Ge("qty", 3)
	q, err := Scan("sales").
		GroupBy("day").
		Agg(CountIf(bulk).As("bulk"), CountIf(Not(bulk)).As("small")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	// qty by day: day 1 -> {2,1}, day 2 -> {4,3}, day 3 -> {5,1}.
	want := [][]float64{{1, 0, 2}, {2, 2, 0}, {3, 1, 1}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}

	// CountIf over a join payload column, ungrouped, with a negated range.
	q2, err := Scan("sales").
		Join("product", "pid", "pid", "price").
		Agg(
			CountIf(Between("price", 3.1, 6)).As("mid"),
			CountIf(Not(Between("price", 3.1, 6))).As("rest"),
		).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res2 := run(t, e, q2)
	// Prices per sales row: 5.25, 3.25, 5.25, 3.0, 3.25, 3.0 — mid counts
	// the two 5.25 and two 3.25.
	want2 := [][]float64{{4, 2}}
	if !reflect.DeepEqual(res2.Rows, want2) {
		t.Fatalf("rows = %v, want %v", res2.Rows, want2)
	}
}

// TestCountIfEmitsZeroForSpillRangeGroups pins a regression: a group key
// beyond the dense fast-path range (>= 1024) whose rows all fail every
// CountIf condition must still emit a row with count 0, exactly like a
// dense-range key does.
func TestCountIfEmitsZeroForSpillRangeGroups(t *testing.T) {
	cat, e := newFixture(t)
	big := e.CreateTable(columnar.Schema{Name: "big", Columns: []columnar.ColumnDef{
		{Name: "bucket", Type: columnar.Int64},
		{Name: "v", Type: columnar.Int64},
	}}, 8, false)
	bt := big.Table()
	bt.AppendRows([][]int64{
		bt.EncodeRow(1, 5),    // dense key, cond fails
		bt.EncodeRow(2048, 5), // spill key, cond fails
		bt.EncodeRow(4096, 50),
	}, 0)
	q, err := Scan("big").
		GroupBy("bucket").
		Agg(CountIf(Ge("v", 10)).As("hits")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{1, 0}, {2048, 0}, {4096, 1}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestPredTypeErrorsAreTyped(t *testing.T) {
	cat, _ := newFixture(t)
	plans := []*Plan{
		Scan("sales").Filter(Eq("day", "monday")).Agg(Count()),
		Scan("sales").Filter(Between("day", 1, "friday")).Agg(Count()),
		Scan("sales").Filter(Between("amount", 1.0, "high")).Agg(Count()),
		Scan("sales").Filter(Eq("tag", 7)).Agg(Count()),
		Scan("sales").Filter(Eq("day", 1.5)).Agg(Count()),
		Scan("sales").SemiJoin("product", "pid", "pid", Gt("price", "expensive")).Agg(Count()),
		Scan("sales").Join("product", "pid", "pid", "price").JoinFilter(Le("price", []byte("x"))).Agg(Count()),
		Scan("sales").GroupBy("pid").Agg(Count()).Having(Gt("count", "many")),
		Scan("sales").Agg(CountIf(Eq("qty", "lots"))),
	}
	for i, p := range plans {
		_, err := p.Bind(cat)
		if err == nil {
			t.Errorf("plan %d: wrong-typed literal bound cleanly", i)
			continue
		}
		if !errors.Is(err, ErrPredType) {
			t.Errorf("plan %d: err %v does not wrap ErrPredType", i, err)
		}
	}

	// Name errors must NOT read as type errors.
	_, err := Scan("sales").Filter(Eq("nope", 1)).Agg(Count()).Bind(cat)
	if err == nil || errors.Is(err, ErrPredType) {
		t.Errorf("unknown column: err = %v", err)
	}
}

func TestJoinAndOrderBindErrors(t *testing.T) {
	cat, _ := newFixture(t)
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"limit-without-orderby", Scan("sales").GroupBy("pid").Agg(Count()).Limit(3), "without OrderBy"},
		{"orderby-unknown", Scan("sales").GroupBy("pid").Agg(Count()).OrderBy("revenue", true), "not an output column"},
		{"orderby-twice", Scan("sales").GroupBy("pid").Agg(Count()).OrderBy("count", true).OrderBy("pid", false), "OrderBy called twice"},
		{"limit-nonpositive", Scan("sales").GroupBy("pid").Agg(Count()).OrderBy("count", true).Limit(0), "need > 0"},
		{"having-unknown", Scan("sales").GroupBy("pid").Agg(Count()).Having(Gt("revenue", 1)), "not an output column"},
		{"on-before-join", Scan("sales").On("day", "day").Agg(Count()), "On before Join"},
		{"joinfilter-before-join", Scan("sales").JoinFilter(Eq("price", 1)).Agg(Count()), "JoinFilter before Join"},
		{"join-twice", Scan("sales").Join("product", "pid", "pid").Join("daily", "day", "day").Agg(Count()), "already has a join"},
		{"join-after-semijoin", Scan("sales").SemiJoin("product", "pid", "pid").Join("daily", "day", "day").Agg(Count()), "already has a join"},
		{"too-many-keys",
			Scan("sales").Join("daily", "day", "day").On("pid", "pid").On("qty", "factor").On("amount", "factor").Agg(Count()),
			"exceeds 3 columns"},
		{"string-payload", Scan("sales").Join("product", "pid", "pid", "category").Agg(Count()), "string"},
		{"ambiguous-payload", Scan("sales").Join("daily", "day", "day", "pid").Agg(Count()), "ambiguous"},
		{"filter-on-payload",
			Scan("sales").Join("product", "pid", "pid", "price").Filter(Gt("price", 1)).Agg(Count()),
			"use JoinFilter"},
		{"string-fact-key", Scan("sales").Join("product", "tag", "pid").Agg(Count()), "not int64"},
		{"group-on-float-payload",
			Scan("sales").Join("product", "pid", "pid", "price").GroupBy("price").Agg(Count()),
			"only int64 keys"},
		{"unknown-payload", Scan("sales").Join("product", "pid", "pid", "sku").Agg(Count()), "no column"},
	}
	for _, tc := range cases {
		_, err := tc.plan.Bind(cat)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}
