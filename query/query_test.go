package query

import (
	"reflect"
	"strings"
	"testing"

	"elastichtap/internal/columnar"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
)

// testCatalog adapts an oltp.Engine to the Catalog interface.
type testCatalog struct{ e *oltp.Engine }

func (c testCatalog) Handle(name string) *oltp.TableHandle { return c.e.Table(name) }

// newFixture loads a small sales/product pair:
//
//	sales(day int, pid int, qty int, amount float, tag string)
//	product(pid int, price float)
func newFixture(t *testing.T) (Catalog, *oltp.Engine) {
	t.Helper()
	e := oltp.NewEngine()
	sales := e.CreateTable(columnar.Schema{Name: "sales", Columns: []columnar.ColumnDef{
		{Name: "day", Type: columnar.Int64},
		{Name: "pid", Type: columnar.Int64},
		{Name: "qty", Type: columnar.Int64},
		{Name: "amount", Type: columnar.Float64},
		{Name: "tag", Type: columnar.String},
	}}, 16, false)
	st := sales.Table()
	var rows [][]int64
	for _, r := range []struct {
		day, pid, qty int
		amount        float64
		tag           string
	}{
		{1, 1, 2, 10.5, "web"},
		{1, 2, 1, 3.25, "store"},
		{2, 1, 4, 21.0, "web"},
		{2, 3, 3, 9.0, "web"},
		{3, 2, 5, 16.25, "store"},
		{3, 3, 1, 3.0, "phone"},
	} {
		rows = append(rows, st.EncodeRow(r.day, r.pid, r.qty, r.amount, r.tag))
	}
	st.AppendRows(rows, 0)

	product := e.CreateTable(columnar.Schema{Name: "product", Columns: []columnar.ColumnDef{
		{Name: "pid", Type: columnar.Int64},
		{Name: "price", Type: columnar.Float64},
	}}, 4, false)
	pt := product.Table()
	pt.AppendRows([][]int64{
		pt.EncodeRow(1, 5.25),
		pt.EncodeRow(2, 3.25),
		pt.EncodeRow(3, 3.0),
	}, 0)
	return testCatalog{e}, e
}

func run(t *testing.T, e *oltp.Engine, q olap.Query) olap.Result {
	t.Helper()
	tab := e.Table(q.FactTable()).Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "test",
	}}}
	eng := olap.NewEngine(1)
	eng.SetPlacement(topology.Placement{PerSocket: []int{1}})
	res, _, err := eng.Execute(q, src)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFilterGroupByAggregate(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Filter(Ge("day", 2)).
		GroupBy("pid").
		Agg(Sum("amount").As("revenue"), Sum("qty"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	wantCols := []string{"pid", "revenue", "sum_qty", "count"}
	if !reflect.DeepEqual(res.Cols, wantCols) {
		t.Fatalf("cols = %v, want %v", res.Cols, wantCols)
	}
	want := [][]float64{
		{1, 21.0, 4, 1},
		{2, 16.25, 5, 1},
		{3, 12.0, 4, 2},
	}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestUngroupedAggregatesAndMinMax(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Agg(Min("amount"), Max("amount"), Avg("qty"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{3.0, 21.0, 16.0 / 6.0, 6}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestEmptySelectionStillEmitsUngroupedRow(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Filter(Gt("day", 100)).
		Agg(Sum("amount"), Avg("amount"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{0, 0, 0}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
}

func TestStringEqualityPredicate(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		Filter(Eq("tag", "web")).
		Agg(Sum("amount").As("revenue"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	want := [][]float64{{40.5, 3}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}

	// An unknown dictionary string matches nothing (Eq) / everything (Ne).
	q2, err := Scan("sales").Filter(Eq("tag", "fax")).Agg(Count()).Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if res := run(t, e, q2); res.Rows[0][0] != 0 {
		t.Fatalf("unknown Eq matched %v rows", res.Rows[0][0])
	}
	q3, err := Scan("sales").Filter(Ne("tag", "fax")).Agg(Count()).Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if res := run(t, e, q3); res.Rows[0][0] != 6 {
		t.Fatalf("unknown Ne matched %v rows", res.Rows[0][0])
	}
}

func TestSemiJoinWithDimensionPredicate(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		SemiJoin("product", "pid", "pid", Gt("price", 3.1)).
		Agg(Sum("amount").As("revenue"), Count().As("matches")).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if q.Class() != costmodel.JoinProbe {
		t.Fatalf("class = %v, want JoinProbe", q.Class())
	}
	// Products 1 (5.25) and 2 (3.25) qualify; sales rows for pid 1,2.
	res := run(t, e, q)
	want := [][]float64{{10.5 + 3.25 + 21.0 + 16.25, 4}}
	if !reflect.DeepEqual(res.Rows, want) {
		t.Fatalf("rows = %v, want %v", res.Rows, want)
	}
	// Broadcast charge: 3 dim rows x (key + price) x 8 bytes.
	_, buildBytes := q.Prepare()
	if buildBytes != 3*2*columnar.WordBytes {
		t.Fatalf("buildBytes = %d", buildBytes)
	}
}

func TestMultiColumnGroupKey(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales").
		GroupBy("day", "pid").
		Agg(Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, e, q)
	if len(res.Rows) != 6 {
		t.Fatalf("%d groups, want 6", len(res.Rows))
	}
	// Sorted ascending by (day, pid).
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
			t.Fatalf("rows not sorted: %v", res.Rows)
		}
	}
}

func TestClassInference(t *testing.T) {
	if c := Scan("sales").Agg(Count()).Class(); c != costmodel.ScanReduce {
		t.Errorf("reduce class = %v", c)
	}
	if c := Scan("sales").GroupBy("pid").Agg(Count()).Class(); c != costmodel.ScanGroupBy {
		t.Errorf("groupby class = %v", c)
	}
	if c := Scan("sales").SemiJoin("product", "pid", "pid").GroupBy("pid").Agg(Count()).Class(); c != costmodel.JoinProbe {
		t.Errorf("join class = %v", c)
	}
}

func TestExplicitProjection(t *testing.T) {
	cat, e := newFixture(t)
	q, err := Scan("sales", "day", "qty", "amount").
		Filter(Ge("day", 2)).
		Agg(Sum("amount"), Count()).
		Bind(cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(q.Columns()); got != 3 {
		t.Fatalf("scan width %d, want 3", got)
	}
	res := run(t, e, q)
	if res.Rows[0][1] != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}

	// Referencing a column outside the projection is a bind error.
	_, err = Scan("sales", "day").Filter(Ge("qty", 1)).Agg(Count()).Bind(cat)
	if err == nil || !strings.Contains(err.Error(), "projection") {
		t.Fatalf("err = %v", err)
	}
}

func TestBindErrors(t *testing.T) {
	cat, _ := newFixture(t)
	cases := []struct {
		name string
		plan *Plan
		want string
	}{
		{"unknown-table", Scan("nope").Agg(Count()), "unknown table"},
		{"unknown-column", Scan("sales").Filter(Eq("color", 1)).Agg(Count()), "no column"},
		{"no-aggregates", Scan("sales").Filter(Eq("day", 1)), "no aggregates"},
		{"string-group", Scan("sales").GroupBy("tag").Agg(Count()), "int64 keys"},
		{"empty-group", Scan("sales").GroupBy("").Agg(Count()), "empty column"},
		{"string-order", Scan("sales").Filter(Gt("tag", "a")).Agg(Count()), "Eq/Ne"},
		{"string-sum", Scan("sales").Agg(Sum("tag")), "string column"},
		{"fractional-int", Scan("sales").Filter(Eq("day", 1.5)).Agg(Count()), "non-integral"},
		{"double-groupby", Scan("sales").GroupBy("day").GroupBy("pid").Agg(Count()), "GroupBy called twice"},
		{"double-semijoin",
			Scan("sales").SemiJoin("product", "pid", "pid").SemiJoin("product", "pid", "pid").Agg(Count()),
			"already has a semi-join"},
		{"unknown-dim", Scan("sales").SemiJoin("nope", "pid", "pid").Agg(Count()), "unknown dimension"},
		{"unknown-dim-col", Scan("sales").SemiJoin("product", "pid", "sku").Agg(Count()), "no column"},
		{"empty-table", Scan("").Agg(Count()), "empty table"},
	}
	for _, tc := range cases {
		_, err := tc.plan.Bind(cat)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := Scan("sales").Agg(Count()).Bind(nil); err == nil || !strings.Contains(err.Error(), "nil catalog") {
		t.Errorf("nil catalog: err = %v", err)
	}
	var nilPlan *Plan
	if _, err := nilPlan.Bind(cat); err == nil {
		t.Error("nil plan bound")
	}
}
