package elastichtap

import (
	"context"
	"errors"
	"fmt"

	"elastichtap/internal/core"
	"elastichtap/internal/olap"
	"elastichtap/internal/rde"
	"elastichtap/internal/workload"
	"elastichtap/query"
)

// ErrClosed reports a query or submission against a System whose Close
// has begun. Close drains in-flight work and then rejects: queries
// admitted before Close complete normally, later ones fail with an error
// wrapping this sentinel.
var ErrClosed = olap.ErrClosed

// ErrCancelled reports a query abandoned before completion — a cancelled
// context, an expired deadline, or Handle.Cancel. The returned error
// wraps both ErrCancelled and the context's own cause, so
//
//	errors.Is(err, elastichtap.ErrCancelled)   // any cancellation
//	errors.Is(err, context.DeadlineExceeded)   // specifically a timeout
//
// both work. Cancellation is observed between admission phases and, once
// executing, at morsel boundaries: the error arrives within one morsel's
// work per active worker, partial results are discarded, and the System
// (pool, placement, replicas) remains fully usable.
var ErrCancelled = olap.ErrCancelled

// ErrPending is returned by Handle.Report while the submission is still
// executing.
var ErrPending = errors.New("elastichtap: query still executing")

// ErrOverloaded is the workload manager's backpressure sentinel: an
// admission rejected because the tenant's queue is at its configured
// depth or its scanned-bytes budget for the current quota window is
// spent. Match it with errors.Is; the concrete error is a *OverloadError
// carrying the tenant, the reason and retry-after metadata:
//
//	var oe *elastichtap.OverloadError
//	if errors.As(err, &oe) {
//	    time.Sleep(oe.RetryAfter) // 0 for queue-full: retry when a slot frees
//	}
//
// Overload is reported instead of queueing unboundedly — the serving
// system's alternative to collapse under a misbehaving tenant.
var ErrOverloaded = workload.ErrOverloaded

// ErrUnknownTenant reports a query naming a tenant that was never
// registered; the default tenant always exists.
var ErrUnknownTenant = workload.ErrUnknownTenant

// OverloadError re-exports the workload manager's typed admission
// rejection (tenant, reason, retry-after, occupancy).
type OverloadError = workload.OverloadError

// TenantConfig re-exports the workload manager's per-tenant priority and
// quota configuration: Weight (fair-share of morsel throughput under
// contention), MaxConcurrent and MaxQueueDepth (admission bounds;
// UnlimitedQuota removes one, zero really means zero), BytesPerWindow and
// Window (scanned-bytes budget on a monotonic clock).
type TenantConfig = workload.Config

// TenantStats re-exports one tenant's observability snapshot.
type TenantStats = workload.TenantStats

// UnlimitedQuota removes a concurrency or queue-depth bound in a
// TenantConfig.
const UnlimitedQuota = workload.Unlimited

// DefaultTenant is the implicit tenant untenanted queries run as. It is
// registered automatically with weight 1 and no quotas, so callers that
// predate the workload manager behave exactly as before.
const DefaultTenant = workload.DefaultTenant

// WithTenant returns a context whose queries run as the named tenant:
// they pass the tenant's admission gate (concurrency bound, queue depth,
// byte budget) and compete for pool workers at the tenant's weight.
// Thread it through QueryContext, Submit, or a prepared statement's
// Query:
//
//	ctx := elastichtap.WithTenant(ctx, "dashboards")
//	rep, err := sys.QueryContext(ctx, q)
//
// The tenant must have been registered with RegisterTenant (the default
// tenant excepted); unknown names fail with ErrUnknownTenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return workload.WithTenant(ctx, tenant)
}

// RegisterTenant creates or reconfigures a workload-manager tenant.
// Tenants are the unit of multi-tenant arbitration: each gets its own
// admission queue and quota window, and under contention the elastic
// pool divides morsel throughput between backlogged tenants in
// proportion to their weights (4:2:1 weights converge to 4:2:1 shares).
// Reconfiguration applies to subsequent admissions; in-flight queries
// are untouched.
func (s *System) RegisterTenant(name string, cfg TenantConfig) error {
	return s.inner.WM.Register(name, cfg)
}

// TenantStats returns the workload manager's per-tenant snapshots sorted
// by name; Metrics joins the same rows with measured morsel dispatch.
func (s *System) TenantStats() []TenantStats {
	return s.inner.WM.Stats()
}

// Args re-exports the prepared-statement argument set (package
// elastichtap/query): one value per query.Param name in the plan.
type Args = query.Args

// QueryContext is Query with cancellation: the context is observed
// through admission (switch, migration, ETL) and during execution at
// morsel boundaries. A cancelled query fails with an error wrapping
// ErrCancelled and the context's cause; the System stays fully usable.
func (s *System) QueryContext(ctx context.Context, q Query) (QueryReport, error) {
	if s.db == nil {
		return QueryReport{}, fmt.Errorf("elastichtap: Query: %w", ErrNoDatabase)
	}
	rep, _, err := s.inner.RunQueryContext(ctx, q, core.QueryOptions{}, nil)
	return rep, err
}

// QueryInStateContext is QueryInState with cancellation (see
// QueryContext).
func (s *System) QueryInStateContext(ctx context.Context, q Query, st State) (QueryReport, error) {
	if s.db == nil {
		return QueryReport{}, fmt.Errorf("elastichtap: QueryInState: %w", ErrNoDatabase)
	}
	rep, _, err := s.inner.RunQueryContext(ctx, q, core.QueryOptions{ForceState: core.ForcedState(st)}, nil)
	return rep, err
}

// QueryBatchContext is QueryBatch with cancellation: the batch shares one
// snapshot and a single ETL, and the context is checked before each
// member and during each execution. On cancellation the reports of the
// queries that completed are returned alongside the error.
func (s *System) QueryBatchContext(ctx context.Context, qs []Query) ([]QueryReport, error) {
	if s.db == nil {
		return nil, fmt.Errorf("elastichtap: QueryBatch: %w", ErrNoDatabase)
	}
	var out []QueryReport
	var set *rde.SnapshotSet
	for _, q := range qs {
		opt := core.QueryOptions{Batch: true}
		if set != nil {
			opt.SkipSwitch = true
		}
		rep, next, err := s.inner.RunQueryContext(ctx, q, opt, set)
		if err != nil {
			return out, err
		}
		set = next
		out = append(out, rep)
	}
	return out, nil
}

// Handle tracks one asynchronous query submission. Obtain one from
// System.Submit or Stmt.Submit; then Wait for the outcome, select on
// Done, poll Report, or Cancel the execution.
type Handle struct {
	query  string
	cancel context.CancelFunc
	done   chan struct{}
	rep    QueryReport
	err    error
}

// Query returns the submitted query's display name.
func (h *Handle) Query() string { return h.query }

// Done returns a channel closed when the submission finishes — however it
// finishes: success, failure, or cancellation.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the submission finishes and returns its outcome.
// Safe to call from several goroutines; every caller sees the same
// report and error.
func (h *Handle) Wait() (QueryReport, error) {
	<-h.done
	return h.rep, h.err
}

// Report returns the outcome without blocking: ErrPending while the
// query is still executing, Wait's result afterwards.
func (h *Handle) Report() (QueryReport, error) {
	select {
	case <-h.done:
		return h.rep, h.err
	default:
		return QueryReport{}, ErrPending
	}
}

// Cancel abandons the submission: unstarted work is discarded at the next
// morsel boundary and Wait returns an error wrapping ErrCancelled and
// context.Canceled. Cancelling a finished submission is a no-op — a
// cancel racing normal completion keeps the successful result. Cancel
// does not block for the drain; Wait observes it.
func (h *Handle) Cancel() { h.cancel() }

// Submit enqueues a query for asynchronous execution and returns
// immediately. Many client goroutines may submit concurrently: admission
// (snapshot switch, freshness measurement, migration, ETL) runs one
// query at a time — in no guaranteed order across submissions — while
// the executions interleave their morsels on the shared elastic worker
// pool: the multi-client serving shape the paper's scheduler was built
// for. The context governs the whole submission (queueing included);
// Handle.Cancel cancels just this query.
func (s *System) Submit(ctx context.Context, q Query) (*Handle, error) {
	if s.db == nil {
		return nil, fmt.Errorf("elastichtap: Submit: %w", ErrNoDatabase)
	}
	return s.submit(ctx, q)
}

// submit spawns the submission goroutine; callers have validated the
// database.
func (s *System) submit(ctx context.Context, q Query) (*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, olap.CancelErr(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	h := &Handle{query: q.Name(), cancel: cancel, done: make(chan struct{})}
	go func() {
		defer cancel()
		rep, _, err := s.inner.RunQueryContext(cctx, q, core.QueryOptions{}, nil)
		h.rep, h.err = rep, err
		close(h.done)
	}()
	return h, nil
}

// Stmt is a prepared statement: a logical plan bound once against the
// catalog — name resolution, predicate typing, kernel selection — and
// executed many times with different parameter values. Create one with
// System.Prepare over a plan carrying query.Param placeholders; each
// execution stamps the values into the compiled predicate tests without
// re-running compilation, and produces results bitwise identical to
// rebinding the plan with the values inlined. A Stmt is safe for
// concurrent use.
type Stmt struct {
	sys *System
	c   *query.Compiled
}

// Prepare binds a logical plan against the loaded database and returns a
// reusable prepared statement. Placeholder positions are type-checked
// against the catalog here; only the values arrive later. Plans without
// parameters prepare too — Query then takes nil args.
func (s *System) Prepare(p *Plan) (*Stmt, error) {
	if s.db == nil {
		return nil, fmt.Errorf("elastichtap: Prepare: %w", ErrNoDatabase)
	}
	c, err := p.Bind(s.db)
	if err != nil {
		return nil, err
	}
	return &Stmt{sys: s, c: c}, nil
}

// ParamNames returns the statement's distinct parameter names, sorted;
// empty for parameterless plans.
func (st *Stmt) ParamNames() []string { return st.c.ParamNames() }

// Query stamps args into the statement and executes it adaptively (see
// QueryContext). Missing, unknown or wrongly-typed arguments fail before
// the system is touched.
func (st *Stmt) Query(ctx context.Context, args Args) (QueryReport, error) {
	q, err := st.c.WithArgs(args)
	if err != nil {
		return QueryReport{}, err
	}
	return st.sys.QueryContext(ctx, q)
}

// QueryInState stamps args into the statement and executes it with the
// system pinned to a state (static schedules, A/B comparisons of one
// prepared report).
func (st *Stmt) QueryInState(ctx context.Context, args Args, state State) (QueryReport, error) {
	q, err := st.c.WithArgs(args)
	if err != nil {
		return QueryReport{}, err
	}
	return st.sys.QueryInStateContext(ctx, q, state)
}

// Submit stamps args into the statement and enqueues it asynchronously
// (see System.Submit).
func (st *Stmt) Submit(ctx context.Context, args Args) (*Handle, error) {
	q, err := st.c.WithArgs(args)
	if err != nil {
		return nil, err
	}
	return st.sys.Submit(ctx, q)
}

// TableFreshness reports one table's freshness in isolation: the rate of
// replica-identical tuples over the table's tuples, and the fresh bytes
// an ETL of just this table would copy. Unlike the system-wide Freshness,
// this reads the staleness of exactly the table a workload cares about.
func (s *System) TableFreshness(table string) (rate float64, freshBytes int64, err error) {
	h := s.inner.OLTPE.Table(table)
	if h == nil {
		return 0, 0, fmt.Errorf("elastichtap: unknown table %q", table)
	}
	f := s.inner.X.TableFreshness(h)
	return f.Rate, f.Nft, nil
}
