package elastichtap

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"elastichtap/internal/ch"
	"elastichtap/internal/costmodel"
	"elastichtap/internal/olap"
	"elastichtap/query"
)

// sessionGate is an olap.Query over the real orderline table whose
// execution blocks until released, so tests cancel mid-execution at a
// known point.
type sessionGate struct {
	started  chan struct{}
	release  chan struct{}
	consumed atomic.Int64
}

type sessionGateLocal struct{ g *sessionGate }

func (l *sessionGateLocal) Consume(b olap.Block) {
	select {
	case l.g.started <- struct{}{}:
	default:
	}
	<-l.g.release
	l.g.consumed.Add(1)
}

func (g *sessionGate) Name() string               { return "gate" }
func (g *sessionGate) Class() costmodel.WorkClass { return costmodel.ScanReduce }
func (g *sessionGate) FactTable() string          { return "orderline" }
func (g *sessionGate) Columns() []int             { return []int{0} }
func (g *sessionGate) Prepare() (olap.Exec, int64) {
	return g, 0
}
func (g *sessionGate) NewLocal() olap.Local { return &sessionGateLocal{g: g} }
func (g *sessionGate) Merge(locals []olap.Local) olap.Result {
	return olap.Result{Cols: []string{"n"}, Rows: [][]float64{{float64(g.consumed.Load())}}}
}

// TestSubmitCancelMidExecution drives the acceptance scenario end to end:
// a query cancelled mid-execution fails with an error wrapping both
// ErrCancelled and context.Canceled, and a follow-up query on the same
// System produces results identical to a never-cancelled twin system.
func TestSubmitCancelMidExecution(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()
	sys.Run(200)

	// Cancellation delivery (context.AfterFunc) is asynchronous: a cancel
	// racing the release of the gated morsel may legitimately lose and
	// keep the successful result. Retry the scenario until the cancel
	// wins — with the 100ms head start it wins on the first attempt in
	// practice; the loop only absorbs pathological scheduler stalls.
	var h *Handle
	cancelled := false
	for attempt := 0; attempt < 5 && !cancelled; attempt++ {
		gate := &sessionGate{started: make(chan struct{}, 64), release: make(chan struct{})}
		var err error
		h, err = sys.Submit(context.Background(), gate)
		if err != nil {
			t.Fatal(err)
		}
		<-gate.started // a worker is mid-morsel
		if _, err := h.Report(); !errors.Is(err, ErrPending) {
			t.Fatalf("Report before completion = %v, want ErrPending", err)
		}
		h.Cancel()
		time.Sleep(100 * time.Millisecond)
		close(gate.release)
		_, err = h.Wait()
		switch {
		case errors.Is(err, ErrCancelled) && errors.Is(err, context.Canceled):
			cancelled = true
		case err == nil:
			t.Logf("attempt %d: cancel lost the completion race; retrying", attempt)
		default:
			t.Fatalf("Wait = %v, want ErrCancelled wrapping context.Canceled", err)
		}
	}
	if !cancelled {
		t.Fatal("cancellation never beat completion across 5 attempts")
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("Done channel still open after Wait")
	}
	if _, err := h.Report(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Report after cancel = %v, want ErrCancelled", err)
	}
	h.Cancel() // cancelling a finished handle is a no-op

	// Placement and pool must be consistent: the same System answers a
	// follow-up exactly like a twin that never saw the cancellation.
	got, err := sys.QueryContext(context.Background(), Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	twin, tdb := newSystem(t)
	defer twin.Close()
	twin.Run(200)
	want, err := twin.Query(Q6(tdb))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Result, want.Result) {
		t.Fatalf("post-cancel result diverged:\n got %+v\nwant %+v", got.Result, want.Result)
	}
}

// TestQueryContextPreCancelled verifies the admission-entry checkpoint:
// an already-cancelled context never reaches the engine.
func TestQueryContextPreCancelled(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.QueryContext(ctx, Q6(db)); !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
}

// TestDeadlineExpiryDuringAdmission forces ETL-heavy admissions (α=0
// migrates to S2 on any fresh byte) under deadlines that expire while
// the protocol runs — including between the switch and the ETL and right
// after the ETL copy. Whatever phase the expiry lands in, the error must
// carry context.DeadlineExceeded, and the exchange must stay consistent:
// afterwards an S2 (replica) read and an S1 (snapshot) read of the same
// data agree exactly, and the post-ETL freshness-rate returns to 1.
func TestDeadlineExpiryDuringAdmission(t *testing.T) {
	sys, err := New(WithAlpha(0))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	db := sys.LoadCH(0.005, 1)
	if err := sys.StartWorkload(0); err != nil {
		t.Fatal(err)
	}

	expired := 0
	for round := 0; round < 8; round++ {
		sys.Run(300) // accumulate fresh bytes so admission must ETL
		// Deadlines from "already past" to "expires mid-protocol".
		d := time.Duration(round) * 50 * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), d)
		_, qerr := sys.QueryContext(ctx, Q6(db))
		cancel()
		if qerr != nil {
			if !errors.Is(qerr, ErrCancelled) || !errors.Is(qerr, context.DeadlineExceeded) {
				t.Fatalf("round %d: err = %v, want ErrCancelled wrapping DeadlineExceeded", round, qerr)
			}
			expired++
		}
	}
	if expired == 0 {
		t.Skip("no deadline expired on this machine; nothing to verify")
	}

	// Replicas and snapshots must agree after the abandoned admissions:
	// the same logical data through both access paths, and a complete
	// ETL (α=0 forces S2) restores freshness-rate 1.
	s2, err := sys.QueryContext(context.Background(), Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if s2.State != S2 {
		t.Fatalf("state = %v, want S2 under α=0", s2.State)
	}
	if rate, _ := sys.Freshness(); rate != 1 {
		t.Fatalf("freshness after ETL = %v, want 1", rate)
	}
	s1, err := sys.QueryInStateContext(context.Background(), Q6(db), S1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Result, s2.Result) {
		t.Fatalf("snapshot/replica diverged after deadline churn:\n S1 %+v\n S2 %+v", s1.Result, s2.Result)
	}
}

// TestSubmitManyClients fans out concurrent submissions from many client
// goroutines: admission serializes, executions share the pool, and every
// handle resolves to the deterministic result of its query.
func TestSubmitManyClients(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()
	sys.Run(200)

	queries := []Query{Q1(db), Q6(db), Q18(db), Q19(db)}
	// References from sequential execution (results are deterministic per
	// query because the OLTP workload is quiescent).
	want := make([]olap.Result, len(queries))
	for i, q := range queries {
		rep, err := sys.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep.Result
	}

	const clients = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*len(queries))
	for c := 0; c < clients; c++ {
		for i, q := range queries {
			h, err := sys.Submit(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(i int, h *Handle) {
				defer wg.Done()
				rep, err := h.Wait()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(rep.Result, want[i]) {
					t.Errorf("%s: async result diverged from sequential", rep.Query)
				}
			}(i, h)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCancellationRaces hammers cancellation against a live second query,
// scheduler migrations and the transactional workload under -race: every
// cancelled call fails typed, every surviving call stays correct.
func TestCancellationRaces(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()
	sys.Run(200)
	ref, err := sys.QueryContext(context.Background(), Q6(db))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // migration churn resizes the pool mid-query
		defer wg.Done()
		states := []State{S1, S2, S3NI, S3IS}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sys.Core().Sched.MigrateTo(states[i%len(states)])
		}
	}()
	wg.Add(1)
	go func() { // steady uncancelled query stream
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rep, err := sys.QueryContext(context.Background(), Q6(db))
			if err != nil {
				t.Errorf("survivor: %v", err)
				return
			}
			if !reflect.DeepEqual(rep.Result, ref.Result) {
				t.Errorf("survivor result diverged")
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 40; round++ {
		ctx, cancel := context.WithTimeout(context.Background(),
			time.Duration(rng.Intn(2000))*time.Microsecond)
		_, err := sys.QueryContext(ctx, Q1(db))
		cancel()
		if err != nil && !errors.Is(err, ErrCancelled) {
			t.Fatalf("round %d: err = %v, want nil or ErrCancelled", round, err)
		}
	}
	close(stop)
	wg.Wait()

	// The system must still be exact after all that churn.
	rep, err := sys.QueryContext(context.Background(), Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Result, ref.Result) {
		t.Fatal("final result diverged after cancellation churn")
	}
}

// TestCloseTyped covers the ErrClosed satellite: idempotent Close,
// typed rejections for every entry point, and drain-then-reject under
// concurrent in-flight queries.
func TestCloseTyped(t *testing.T) {
	sys, db := newSystem(t)
	sys.Run(100)

	// In-flight queries racing Close either complete or fail typed.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := sys.QueryContext(context.Background(), Q6(db)); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("in-flight query: err = %v, want nil or ErrClosed", err)
			}
		}()
	}
	var cg sync.WaitGroup
	for i := 0; i < 3; i++ { // concurrent, idempotent Close
		cg.Add(1)
		go func() {
			defer cg.Done()
			sys.Close()
		}()
	}
	cg.Wait()
	wg.Wait()

	if _, err := sys.QueryContext(context.Background(), Q6(db)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := sys.QueryBatchContext(context.Background(), []Query{Q6(db)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("QueryBatch after Close = %v, want ErrClosed", err)
	}
	h, err := sys.Submit(context.Background(), Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close resolved to %v, want ErrClosed", err)
	}
	stmt, err := sys.Prepare(ch.Q6PlanParam())
	if err != nil {
		t.Fatal(err) // Prepare only binds; it needs no pool
	}
	if _, err := stmt.Query(context.Background(), ch.Q6Args(0, 0, 0, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Stmt.Query after Close = %v, want ErrClosed", err)
	}
	sys.Close() // still a no-op
}

// TestTableFreshness covers the Freshness satellite: per-table rates
// reflect exactly the tables a workload touches.
func TestTableFreshness(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()

	rate, fresh, err := sys.TableFreshness("orderline")
	if err != nil || rate != 1 || fresh != 0 {
		t.Fatalf("pristine orderline: rate=%v fresh=%d err=%v, want 1,0,nil", rate, fresh, err)
	}
	if _, _, err := sys.TableFreshness("nope"); err == nil {
		t.Fatal("unknown table must error")
	}

	sys.Run(500) // NewOrder-only: inserts into orders/orderline, updates stock/district

	olRate, olFresh, err := sys.TableFreshness("orderline")
	if err != nil {
		t.Fatal(err)
	}
	if olRate >= 1 || olFresh <= 0 {
		t.Fatalf("orderline after NewOrders: rate=%v fresh=%d, want stale", olRate, olFresh)
	}
	// Item is never written by the mix: its isolated rate must stay 1
	// even while the system-wide blend is below 1.
	itRate, itFresh, err := sys.TableFreshness("item")
	if err != nil {
		t.Fatal(err)
	}
	if itRate != 1 || itFresh != 0 {
		t.Fatalf("item: rate=%v fresh=%d, want 1,0", itRate, itFresh)
	}
	sysRate, sysFresh := sys.Freshness()
	if sysRate >= 1 || sysFresh < olFresh {
		t.Fatalf("system-wide: rate=%v fresh=%d, want blended staleness covering orderline", sysRate, sysFresh)
	}
	_ = db
}

// TestStmtLifecycle exercises the facade statement API: parameter
// reflection, stamped execution, argument validation, and concurrent
// reuse of one statement.
func TestStmtLifecycle(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()
	sys.Run(200)

	stmt, err := sys.Prepare(query.Scan("orderline").
		Named("weekly").
		Filter(query.Ge("ol_delivery_d", query.Param("since"))).
		GroupBy("ol_w_id").
		Agg(query.Sum("ol_amount").As("revenue"), query.Count()))
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.ParamNames(); !reflect.DeepEqual(got, []string{"since"}) {
		t.Fatalf("ParamNames = %v", got)
	}

	if _, err := stmt.Query(context.Background(), nil); err == nil {
		t.Fatal("missing argument must fail")
	}
	if _, err := stmt.Query(context.Background(), Args{"since": 0, "extra": 1}); err == nil {
		t.Fatal("unknown argument must fail")
	}
	if _, err := stmt.Query(context.Background(), Args{"since": "yesterday"}); !errors.Is(err, query.ErrPredType) {
		t.Fatalf("wrongly-typed argument = %v, want ErrPredType", err)
	}

	// The stamped statement must equal an inline-literal bind, and one
	// statement must serve concurrent executions with different args.
	day := db.Day()
	wantRep := func(since int64) olap.Result {
		q, err := sys.Build(query.Scan("orderline").
			Named("weekly").
			Filter(query.Ge("ol_delivery_d", since)).
			GroupBy("ol_w_id").
			Agg(query.Sum("ol_amount").As("revenue"), query.Count()))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.QueryContext(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Result
	}
	sinces := []int64{0, day - 7, day}
	want := make([]olap.Result, len(sinces))
	for i, s := range sinces {
		want[i] = wantRep(s)
	}
	var wg sync.WaitGroup
	for i, s := range sinces {
		wg.Add(1)
		go func(i int, s int64) {
			defer wg.Done()
			rep, err := stmt.Query(context.Background(), Args{"since": s})
			if err != nil {
				t.Errorf("since=%d: %v", s, err)
				return
			}
			if !reflect.DeepEqual(rep.Result, want[i]) {
				t.Errorf("since=%d: stamped result != literal bind", s)
			}
		}(i, s)
	}
	wg.Wait()
}
