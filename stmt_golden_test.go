package elastichtap

import (
	"context"
	"reflect"
	"testing"

	"elastichtap/internal/ch"
	"elastichtap/internal/olap"
	"elastichtap/internal/oltp"
	"elastichtap/internal/topology"
	"elastichtap/query"
)

// stmtGoldenCases pairs each parameterized evaluation plan with literal
// plans for two argument sets (defaults and a tightened variant), so the
// same prepared statement is stamped and executed twice per query.
func stmtGoldenCases(db *ch.DB) []struct {
	name    string
	param   *query.Plan
	argSets []query.Args
	literal []*query.Plan
} {
	day := int64(ch.LoadDay)
	return []struct {
		name    string
		param   *query.Plan
		argSets []query.Args
		literal []*query.Plan
	}{
		{"Q1", ch.Q1PlanParam(),
			[]query.Args{ch.Q1Args(0), ch.Q1Args(day + 5)},
			[]*query.Plan{ch.Q1Plan(0), ch.Q1Plan(day + 5)}},
		{"Q6", ch.Q6PlanParam(),
			[]query.Args{ch.Q6Args(0, 0, 0, 0), ch.Q6Args(day-100, day+10, 3, 7)},
			[]*query.Plan{ch.Q6Plan(0, 0, 0, 0), ch.Q6Plan(day-100, day+10, 3, 7)}},
		{"Q3", ch.Q3PlanParam(),
			[]query.Args{ch.Q3Args(0), ch.Q3Args(3)},
			[]*query.Plan{ch.Q3Plan(0), ch.Q3PlanCarrier(3)}},
		{"Q12", ch.Q12PlanParam(),
			[]query.Args{ch.Q12Args(0), ch.Q12Args(day - 50)},
			[]*query.Plan{ch.Q12Plan(0), ch.Q12Plan(day - 50)}},
		{"Q18", ch.Q18PlanParam(),
			[]query.Args{ch.Q18Args(0), ch.Q18Args(3000)},
			[]*query.Plan{ch.Q18Plan(0, 0), ch.Q18Plan(3000, 0)}},
		{"Q19", ch.Q19PlanParam(),
			[]query.Args{ch.Q19Args(0, 0, 0, 0), ch.Q19Args(2, 6, 20, 80)},
			[]*query.Plan{ch.Q19Plan(0, 0, 0, 0), ch.Q19Plan(2, 6, 20, 80)}},
	}
}

// TestStmtGoldenMatchesFreshBind prepares each evaluation query once and
// stamps it per argument set, requiring results and scan statistics
// DeepEqual to a fresh per-call Bind of the literal plan — the acceptance
// bar for prepared statements: stamping must be indistinguishable from
// recompiling, bit for bit.
func TestStmtGoldenMatchesFreshBind(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.003), 11)
	runNewOrders(t, e, db, 60)
	tab := db.OrderLine.Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "golden",
	}}}

	for _, workers := range []int{1, 6} {
		eng := olap.NewEngine(1)
		eng.SetPlacement(topology.Placement{PerSocket: []int{workers}})
		for _, tc := range stmtGoldenCases(db) {
			stmt, err := tc.param.Bind(db) // once per query
			if err != nil {
				t.Fatalf("%s: prepare: %v", tc.name, err)
			}
			for i, args := range tc.argSets {
				stamped, err := stmt.WithArgs(args)
				if err != nil {
					t.Fatalf("%s[%d]: stamp: %v", tc.name, i, err)
				}
				fresh, err := tc.literal[i].Bind(db) // per-call Bind
				if err != nil {
					t.Fatalf("%s[%d]: fresh bind: %v", tc.name, i, err)
				}
				got, gotSt, err := eng.ExecuteContext(context.Background(), stamped, src)
				if err != nil {
					t.Fatalf("%s[%d]: stamped exec: %v", tc.name, i, err)
				}
				want, wantSt, err := eng.ExecuteContext(context.Background(), fresh, src)
				if err != nil {
					t.Fatalf("%s[%d]: fresh exec: %v", tc.name, i, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("%s[%d] (workers=%d): stamped result != fresh bind\n got %+v\nwant %+v",
						tc.name, i, workers, got, want)
				}
				// Workers varies run to run on the multi-worker engine;
				// everything else must match exactly.
				gotSt.Workers, wantSt.Workers = 0, 0
				gotSt.LocalMorsels, wantSt.LocalMorsels = 0, 0
				gotSt.StolenMorsels, wantSt.StolenMorsels = 0, 0
				gotSt.StolenBytesAt, wantSt.StolenBytesAt = nil, nil
				if !reflect.DeepEqual(gotSt, wantSt) {
					t.Errorf("%s[%d]: stats %+v != %+v", tc.name, i, gotSt, wantSt)
				}
			}
		}
		eng.Close()
	}
}

// TestFacadeQsArePreparedOncePerDB verifies the facade constructors hit
// the per-DB statement cache: repeated construction returns stamped
// clones of one bound statement, and their executions match per-call
// binds of the literal plans.
func TestFacadeQsArePreparedOncePerDB(t *testing.T) {
	e := oltp.NewEngine()
	db := ch.Load(e, ch.SizingForScale(0.003), 11)
	runNewOrders(t, e, db, 60)

	c1, err := db.PreparedPlan("Q6")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := db.PreparedPlan("Q6")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("PreparedPlan must cache the bound statement per DB")
	}
	if _, err := db.PreparedPlan("Q99"); err == nil {
		t.Fatal("unknown plan name must error")
	}

	tab := db.OrderLine.Table()
	src := olap.Source{Table: tab, Parts: []olap.Part{{
		Data: tab.Active(), Lo: 0, Hi: tab.Rows(), Socket: 0, Label: "golden",
	}}}
	eng := olap.NewEngine(1)
	defer eng.Close()
	eng.SetPlacement(topology.Placement{PerSocket: []int{1}})

	for _, tc := range []struct {
		q   Query
		lit *query.Plan
	}{
		{Q1(db), ch.Q1Plan(0)},
		{Q3(db), ch.Q3Plan(0)},
		{Q6(db), ch.Q6Plan(0, 0, 0, 0)},
		{Q12(db), ch.Q12Plan(0)},
		{Q18(db), ch.Q18Plan(0, 0)},
		{Q19(db), ch.Q19Plan(0, 0, 0, 0)},
	} {
		fresh, err := tc.lit.Bind(db)
		if err != nil {
			t.Fatalf("%s: %v", tc.q.Name(), err)
		}
		got, _, err := eng.ExecuteContext(context.Background(), tc.q, src)
		if err != nil {
			t.Fatalf("%s: facade exec: %v", tc.q.Name(), err)
		}
		want, _, err := eng.ExecuteContext(context.Background(), fresh, src)
		if err != nil {
			t.Fatalf("%s: fresh exec: %v", tc.q.Name(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: facade prepared result != fresh bind\n got %+v\nwant %+v", tc.q.Name(), got, want)
		}
	}
}
