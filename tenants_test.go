package elastichtap

import (
	"context"
	"errors"
	"sync"
	"testing"

	"elastichtap/internal/ch"
)

// TestTenantSessionRoundTrip drives the multi-tenant session surface end
// to end: registration, tenanted contexts through QueryContext / Submit /
// prepared statements, per-tenant stats, and backpressure.
func TestTenantSessionRoundTrip(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()
	sys.Run(100)

	if err := sys.RegisterTenant("dash", TenantConfig{Weight: 4, MaxConcurrent: 4, MaxQueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterTenant("etl", TenantConfig{Weight: 1, MaxConcurrent: 2, MaxQueueDepth: 8}); err != nil {
		t.Fatal(err)
	}

	// Synchronous tenanted query.
	ctx := WithTenant(context.Background(), "dash")
	rep, err := sys.QueryContext(ctx, Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenant != "dash" {
		t.Fatalf("report tenant = %q, want dash", rep.Tenant)
	}

	// Asynchronous submissions from two tenants interleave on the pool.
	var wg sync.WaitGroup
	for _, tenant := range []string{"dash", "etl", "dash", "etl"} {
		tenant := tenant
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := sys.Submit(WithTenant(context.Background(), tenant), Q1(db))
			if err != nil {
				t.Errorf("%s submit: %v", tenant, err)
				return
			}
			rep, err := h.Wait()
			if err != nil {
				t.Errorf("%s wait: %v", tenant, err)
				return
			}
			if rep.Tenant != tenant {
				t.Errorf("handle tenant = %q, want %q", rep.Tenant, tenant)
			}
		}()
	}
	wg.Wait()

	// Prepared statements thread the tenant through their context too.
	stmt, err := sys.Prepare(ch.Q6PlanParam())
	if err != nil {
		t.Fatal(err)
	}
	rep, err = stmt.Query(WithTenant(context.Background(), "etl"), ch.Q6Args(0, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenant != "etl" {
		t.Fatalf("stmt tenant = %q, want etl", rep.Tenant)
	}

	stats := sys.TenantStats()
	byName := map[string]TenantStats{}
	for _, ts := range stats {
		byName[ts.Name] = ts
	}
	if byName["dash"].Admitted != 3 || byName["etl"].Admitted != 3 {
		t.Fatalf("admission counts: %+v", byName)
	}
	if got := sys.Metrics().Tenants; len(got) != 3 { // dash, etl, default
		t.Fatalf("metrics tenant rows = %d, want 3", len(got))
	}
}

// TestZeroQuotaTenantFacade is the acceptance check at the public
// surface: a zero-quota tenant receives ErrOverloaded — typed, with
// metadata — rather than queueing unboundedly, while untenanted callers
// run unchanged through the implicit default tenant.
func TestZeroQuotaTenantFacade(t *testing.T) {
	sys, db := newSystem(t)
	defer sys.Close()
	if err := sys.RegisterTenant("frozen", TenantConfig{MaxConcurrent: 0}); err != nil {
		t.Fatal(err)
	}
	_, err := sys.QueryContext(WithTenant(context.Background(), "frozen"), Q6(db))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Tenant != "frozen" {
		t.Fatalf("overload metadata: %+v (err %v)", oe, err)
	}
	// Untenanted query: implicit default tenant, unchanged behavior.
	rep, err := sys.QueryContext(context.Background(), Q6(db))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenant != DefaultTenant {
		t.Fatalf("untenanted query tenant = %q, want %q", rep.Tenant, DefaultTenant)
	}
	// Unknown tenants fail fast and are distinguishable from overload.
	_, err = sys.QueryContext(WithTenant(context.Background(), "ghost"), Q6(db))
	if !errors.Is(err, ErrUnknownTenant) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("unknown tenant err = %v", err)
	}
}
